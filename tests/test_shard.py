"""Tests for sharded multi-coordinator execution (repro.shard).

The matrix the ISSUE demands: shard counts {1, 2, 4} x faults on/off x
crash/failover mid-run x resume-from-cluster-checkpoint, with the N=1
degenerate case byte-identical to the single-coordinator cluster
engine and every sharded run audited by the cross-shard conservation
identities (no sub-query lost or double-executed across epoch
changes).
"""

import dataclasses

import pytest

from repro.cluster.cluster import run_cluster
from repro.config import (
    CacheConfig,
    CheckpointConfig,
    CostModel,
    EngineConfig,
    FaultConfig,
    OverloadConfig,
    ShardConfig,
)
from repro.errors import (
    ConfigurationError,
    CoordinatorCrash,
    PartitionError,
    ShardProtocolError,
)
from repro.fuzz.oracles import check_conservation, results_equivalent
from repro.grid.dataset import DatasetSpec
from repro.parallel.pool import RunSpec
from repro.shard import (
    OwnershipTable,
    ShardMessage,
    ShardTopology,
    latest_manifest,
    resume_cluster,
    run_sharded,
    shard_fault_seed,
)
from repro.workload.cache import trace_cache_key
from repro.workload.generator import WorkloadParams, generate_trace

SPEC = DatasetSpec.small(n_timesteps=6, atoms_per_axis=4)


def engine(**overrides):
    return EngineConfig(
        cost=CostModel(t_b=0.02, t_m=1e-5),
        cache=CacheConfig(capacity_atoms=32),
        **overrides,
    )


def small_trace(seed=0):
    return generate_trace(SPEC, WorkloadParams(n_jobs=20, span=150.0, seed=seed))


def assert_conserved(stats):
    c = stats["conservation"]
    assert c["created"] == c["applied"] + c["residual_cancelled"]
    assert c["executed"] == (
        c["applied"] + c["exec_dropped"] + c["late_done_dropped"]
    )


# ---------------------------------------------------------------------------
# Topology and ownership
# ---------------------------------------------------------------------------
class TestTopology:
    def test_blocks_cover_all_nodes_disjointly(self):
        topo = ShardTopology(n_nodes=8, n_shards=3)
        blocks = [set(topo.nodes_of_shard(d)) for d in range(3)]
        assert set().union(*blocks) == set(range(8))
        assert sum(len(b) for b in blocks) == 8

    def test_shard_of_node_inverts_blocks(self):
        topo = ShardTopology(n_nodes=7, n_shards=3)
        for d in range(3):
            for node in topo.nodes_of_shard(d):
                assert topo.shard_of_node(node) == d

    def test_validation(self):
        with pytest.raises(PartitionError):
            ShardTopology(n_nodes=2, n_shards=4)
        with pytest.raises(PartitionError):
            ShardTopology(n_nodes=4, n_shards=0)

    def test_digest_tracks_shape(self):
        a = ShardTopology(n_nodes=8, n_shards=2)
        assert a.digest() == ShardTopology(n_nodes=8, n_shards=2).digest()
        assert a.digest() != ShardTopology(n_nodes=8, n_shards=4).digest()
        assert a.digest() != ShardTopology(n_nodes=6, n_shards=2).digest()

    def test_ownership_transfer_bumps_epoch(self):
        table = OwnershipTable.identity(3)
        assert table.operator == [0, 1, 2] and table.epoch == [0, 0, 0]
        assert table.transfer(1, 2) == 1
        assert table.operator[1] == 2
        assert table.epoch[1] == 1
        assert sorted(table.domains_of(2)) == [1, 2]

    def test_message_rejects_unknown_kind(self):
        with pytest.raises(ShardProtocolError):
            ShardMessage(
                kind="gossip",
                src_domain=0,
                dst_domain=1,
                src_epoch=0,
                dst_epoch=0,
                send_time=0.0,
                deliver_time=0.01,
                seq=0,
            )

    def test_shard_fault_seed_is_stable_and_distinct(self):
        assert shard_fault_seed(7, 0) == shard_fault_seed(7, 0)
        assert shard_fault_seed(7, 0) != shard_fault_seed(7, 1)
        assert shard_fault_seed(7, 0) != shard_fault_seed(8, 0)


# ---------------------------------------------------------------------------
# Bit-identity matrix
# ---------------------------------------------------------------------------
class TestShardRuns:
    def test_single_shard_matches_cluster_engine(self):
        trace = small_trace(seed=1)
        sharded = run_sharded(
            trace, "jaws2", 4, shards=ShardConfig(n_shards=1), engine=engine()
        )
        cluster = run_cluster(trace, "jaws2", 4, engine=engine())
        assert results_equivalent(cluster.result, sharded.result) is None
        assert sharded.n_shards == 1

    @pytest.mark.parametrize("n_shards", [2, 4])
    def test_all_queries_complete(self, n_shards):
        trace = small_trace(seed=1)
        out = run_sharded(
            trace, "jaws2", 4, shards=ShardConfig(n_shards=n_shards), engine=engine()
        )
        assert out.result.n_queries == trace.n_queries
        assert out.n_shards == n_shards
        assert_conserved(out.shard_stats)
        assert out.shard_stats["shard_crashes"] == 0
        assert out.shard_stats["stale_retries"] == 0

    def test_same_seed_bit_identical(self):
        trace = small_trace(seed=2)
        runs = [
            run_sharded(
                trace, "jaws2", 4, shards=ShardConfig(n_shards=2), engine=engine()
            )
            for _ in range(2)
        ]
        assert results_equivalent(runs[0].result, runs[1].result) is None
        assert runs[0].shard_stats == runs[1].shard_stats

    def test_parallel_windows_match_serial(self):
        trace = small_trace(seed=3)
        shards = ShardConfig(n_shards=2)
        serial = run_sharded(trace, "jaws2", 4, shards=shards, engine=engine())
        pooled = run_sharded(
            trace, "jaws2", 4, shards=shards, engine=engine(), jobs=2
        )
        assert results_equivalent(serial.result, pooled.result) is None
        assert serial.shard_stats == pooled.shard_stats


# ---------------------------------------------------------------------------
# Crash, failover, fault interplay
# ---------------------------------------------------------------------------
class TestFailover:
    def test_explicit_crash_fails_over_and_conserves(self):
        trace = small_trace(seed=1)
        out = run_sharded(
            trace,
            "jaws2",
            4,
            shards=ShardConfig(n_shards=2, crashes=((1, 40.0),)),
            engine=engine(),
        )
        assert out.result.n_queries == trace.n_queries
        stats = out.shard_stats
        assert stats["shard_crashes"] == 1
        assert stats["epoch_bumps"] >= 1
        # The dead shard's domain moved to a survivor at a bumped epoch.
        assert stats["operators"][1] != 1
        assert stats["lease_epochs"][1] >= 1
        assert_conserved(stats)

    def test_failover_is_deterministic(self):
        trace = small_trace(seed=4)
        shards = ShardConfig(n_shards=4, crashes=((3, 30.0), (2, 60.0)))
        a = run_sharded(trace, "jaws2", 4, shards=shards, engine=engine())
        b = run_sharded(trace, "jaws2", 4, shards=shards, engine=engine())
        assert results_equivalent(a.result, b.result) is None
        assert a.shard_stats == b.shard_stats
        assert a.shard_stats["shard_crashes"] == 2

    def test_seeded_window_crashes(self):
        trace = small_trace(seed=5)
        shards = ShardConfig(
            n_shards=4, crash_window=(20.0, 60.0), n_window_crashes=2, seed=7
        )
        out = run_sharded(trace, "jaws2", 4, shards=shards, engine=engine())
        assert out.result.n_queries == trace.n_queries
        assert out.shard_stats["shard_crashes"] == 2
        assert_conserved(out.shard_stats)

    def test_node_crash_and_transients_under_sharding(self):
        trace = small_trace(seed=1)
        faults = FaultConfig(
            seed=11,
            transient_fault_rate=0.05,
            node_crashes=((1, 30.0, 60.0),),
            replication=2,
        )
        shards = ShardConfig(n_shards=2, crashes=((1, 50.0),))
        a = run_sharded(
            trace, "jaws2", 4, shards=shards, engine=engine(), faults=faults
        )
        b = run_sharded(
            trace, "jaws2", 4, shards=shards, engine=engine(), faults=faults
        )
        assert a.result.n_queries == trace.n_queries
        assert a.result.faults["node_downs"] >= 1
        assert_conserved(a.shard_stats)
        assert results_equivalent(a.result, b.result) is None

    def test_permanent_loss_conserves_residual(self):
        trace = small_trace(seed=6)
        faults = FaultConfig(seed=3, permanent_loss_rate=0.01)
        out = run_sharded(
            trace,
            "jaws2",
            4,
            shards=ShardConfig(n_shards=2),
            engine=engine(),
            faults=faults,
        )
        assert out.result.cancelled_queries > 0
        assert check_conservation(trace, out.result) is None
        assert_conserved(out.shard_stats)


# ---------------------------------------------------------------------------
# Cluster-consistent recovery
# ---------------------------------------------------------------------------
class TestRecovery:
    def _shards(self, tmp_path, **overrides):
        return ShardConfig(
            n_shards=2,
            checkpoint_dir=str(tmp_path),
            barrier_every_events=500,
            **overrides,
        )

    def test_resume_is_bit_identical(self, tmp_path):
        trace = small_trace(seed=1)
        reference = run_sharded(
            trace, "jaws2", 4, shards=ShardConfig(n_shards=2), engine=engine()
        )
        with pytest.raises(CoordinatorCrash):
            run_sharded(
                trace,
                "jaws2",
                4,
                shards=self._shards(tmp_path, halt_after_barrier=2),
                engine=engine(),
            )
        assert latest_manifest(tmp_path) is not None
        resumed = resume_cluster(tmp_path).run()
        assert results_equivalent(reference.result, resumed.result) is None
        assert_conserved(resumed.shard_stats)

    def test_resume_after_failover(self, tmp_path):
        trace = small_trace(seed=2)
        crashes = ((1, 30.0),)
        reference = run_sharded(
            trace,
            "jaws2",
            4,
            shards=ShardConfig(n_shards=2, crashes=crashes),
            engine=engine(),
        )
        with pytest.raises(CoordinatorCrash):
            run_sharded(
                trace,
                "jaws2",
                4,
                shards=self._shards(tmp_path, crashes=crashes, halt_after_barrier=3),
                engine=engine(),
            )
        control = resume_cluster(tmp_path)
        # The recovery point must carry the post-failover ownership.
        assert 1 in control.dead
        resumed = control.run()
        assert results_equivalent(reference.result, resumed.result) is None
        assert resumed.shard_stats["shard_crashes"] == 1

    def test_resume_without_manifest_raises(self, tmp_path):
        from repro.errors import RecoveryError

        with pytest.raises(RecoveryError):
            resume_cluster(tmp_path)


# ---------------------------------------------------------------------------
# Configuration guardrails
# ---------------------------------------------------------------------------
class TestConfigErrors:
    def test_rejects_overload_when_sharded(self):
        with pytest.raises(ConfigurationError):
            run_sharded(
                small_trace(),
                "jaws2",
                4,
                shards=ShardConfig(n_shards=2),
                engine=engine(overload=OverloadConfig(enabled=True)),
            )

    def test_rejects_sanitizer_when_sharded(self):
        with pytest.raises(ConfigurationError):
            run_sharded(
                small_trace(),
                "jaws2",
                4,
                shards=ShardConfig(n_shards=2),
                engine=engine(sanitize=True),
            )

    def test_rejects_engine_checkpoint_when_sharded(self, tmp_path):
        with pytest.raises(ConfigurationError):
            run_sharded(
                small_trace(),
                "jaws2",
                4,
                shards=ShardConfig(n_shards=2),
                engine=engine(
                    checkpoint=CheckpointConfig(
                        directory=str(tmp_path), every_events=100
                    )
                ),
            )

    def test_rejects_halt_without_sharding(self):
        with pytest.raises(ConfigurationError):
            ShardConfig(n_shards=1, crashes=((0, 10.0),))
        with pytest.raises(ConfigurationError):
            run_sharded(
                small_trace(),
                "jaws2",
                4,
                shards=ShardConfig(n_shards=1, halt_after_barrier=1),
                engine=engine(),
            )

    def test_crash_schedule_needs_a_survivor(self):
        with pytest.raises(ConfigurationError):
            ShardConfig(n_shards=2, crashes=((0, 10.0), (1, 20.0)))


# ---------------------------------------------------------------------------
# Spec digests and cache keys
# ---------------------------------------------------------------------------
class TestDigests:
    def test_runspec_digest_tracks_topology(self):
        trace = small_trace(seed=1)
        base = RunSpec(trace=trace, scheduler="jaws2")
        clustered = dataclasses.replace(base, n_nodes=4)
        sharded = dataclasses.replace(base, n_nodes=4, shards=ShardConfig(n_shards=2))
        digests = {base.digest(), clustered.digest(), sharded.digest()}
        assert len(digests) == 3

    def test_trace_cache_key_tracks_topology(self):
        params = WorkloadParams(n_jobs=20, span=150.0, seed=0)
        plain = trace_cache_key(SPEC, params, 1.0)
        assert trace_cache_key(SPEC, params, 1.0) == plain
        topo = ShardTopology(n_nodes=4, n_shards=2).digest()
        assert trace_cache_key(SPEC, params, 1.0, topology=topo) != plain
