"""Supervised execution layer: watchdogs, salvage, guards, journal.

The supervisor's promises (DESIGN.md §13):

* a hung worker is killed at its watchdog deadline, the task retried,
  and — once the retry budget is spent — quarantined as a typed
  ``TaskFailure`` while every other task's result salvages in order;
* only the dead worker is respawned — healthy workers survive retry
  rounds (the pool-keepalive fix);
* an RSS-ceiling breach is treated like a hang: kill, retry, quarantine;
* the runaway deadline degrades the pool to serial in-process execution
  with a typed :class:`~repro.errors.SupervisorDegradedWarning`, never
  losing results;
* the campaign journal replays exactly or refuses (CRC, header pin),
  tolerating only a torn final line.

Hang/crash planting uses environment variables + top-level functions:
this platform forks workers, so the child inherits the test's env and
module state (``fork_only`` guards the ones that need it).
"""

import multiprocessing
import os
import time
import warnings
from pathlib import Path

import pytest

from repro.errors import JournalError, SupervisorDegradedWarning
from repro.parallel import (
    CampaignJournal,
    SupervisorConfig,
    map_many,
    supervise,
    task_digest,
)
from repro.parallel.journal import _format_line

fork_only = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="hang/crash planting relies on fork inheriting test state",
)

# Fast supervision knobs for tests: tight heartbeat, short deadlines,
# no backoff sleeps.
FAST = dict(heartbeat=0.02, backoff_base=0.0, backoff_cap=0.0)


def _double(x):
    return x * 2


def _identity_pid(x):
    """Return (item, worker pid) — used to observe pool keepalive."""
    return (x, os.getpid())


def _hang_on_planted(x):
    """Sleep forever when ``x`` matches the env-planted poison value."""
    if str(x) == os.environ.get("REPRO_TEST_HANG_VALUE"):
        while True:  # pragma: no cover - killed by the watchdog
            time.sleep(3600)
    return x * 2


def _crash_on_planted(x):
    if str(x) == os.environ.get("REPRO_TEST_CRASH_VALUE"):
        os._exit(13)  # hard death: no exception, no cleanup
    return x * 2


def _crash_once_on_planted(x):
    marker = Path(os.environ["REPRO_TEST_CRASH_ONCE_MARKER"])
    if str(x) == os.environ.get("REPRO_TEST_CRASH_VALUE") and not marker.exists():
        marker.touch()
        os._exit(13)
    return (x, os.getpid())


def _bloat_on_planted(x):
    if str(x) == os.environ.get("REPRO_TEST_BLOAT_VALUE"):
        hog = []
        while True:  # pragma: no cover - killed by the RSS guard
            hog.append(bytearray(8 * 1024 * 1024))
            time.sleep(0.01)
    return x * 2


def _raise_on_odd(x):
    if x % 2:
        raise ValueError(f"odd item {x}")
    return x * 2


# ---------------------------------------------------------------------------
# Salvage basics (inline and pooled)
# ---------------------------------------------------------------------------
def test_salvage_inline_returns_ordered_outcomes():
    outcomes = map_many(_raise_on_odd, [0, 1, 2, 3], jobs=1, salvage=True)
    assert [o.index for o in outcomes] == [0, 1, 2, 3]
    assert [o.ok for o in outcomes] == [True, False, True, False]
    assert outcomes[2].value == 4
    failure = outcomes[1].failure
    assert failure.reason == "exception"
    assert failure.error_type == "ValueError"
    assert failure.attempts == 1  # deterministic errors are never retried
    assert "odd item 1" in failure.message
    # The JSON form round-trips everything except the live exception.
    data = failure.to_json()
    assert data["reason"] == "exception" and "exception" not in data


def test_salvage_pooled_matches_inline():
    inline = map_many(_raise_on_odd, list(range(6)), jobs=1, salvage=True)
    pooled = map_many(
        _raise_on_odd, list(range(6)), jobs=2, salvage=True,
        supervisor=SupervisorConfig(**FAST),
    )
    assert [(o.index, o.ok, o.value) for o in inline] == [
        (o.index, o.ok, o.value) for o in pooled
    ]
    for a, b in zip(inline, pooled):
        if not a.ok:
            assert (a.failure.error_type, a.failure.message) == (
                b.failure.error_type, b.failure.message
            )


def test_on_outcome_fires_once_per_task():
    seen = []
    result = map_many(
        _double, [3, 4, 5], jobs=1, salvage=True, on_outcome=lambda o: seen.append(o)
    )
    assert sorted(o.index for o in seen) == [0, 1, 2]
    assert {o.digest for o in seen} == {o.digest for o in result}


def test_outcome_digest_is_content_addressed():
    a = map_many(_double, [1, 2], jobs=1, salvage=True)
    b = map_many(_double, [2, 1], jobs=1, salvage=True)
    assert a[0].digest == b[1].digest  # same content, different position
    assert task_digest(1) == a[0].digest


# ---------------------------------------------------------------------------
# Watchdog: hang → kill → retry → quarantine; others salvage in order
# ---------------------------------------------------------------------------
@fork_only
def test_hung_worker_killed_and_quarantined(monkeypatch):
    monkeypatch.setenv("REPRO_TEST_HANG_VALUE", "2")
    outcomes = map_many(
        _hang_on_planted, [0, 1, 2, 3, 4], jobs=2, salvage=True,
        supervisor=SupervisorConfig(task_timeout=0.3, max_retries=1, **FAST),
    )
    assert [o.index for o in outcomes] == [0, 1, 2, 3, 4]
    good = [o for o in outcomes if o.index != 2]
    assert all(o.ok for o in good)
    assert [o.value for o in good] == [0, 2, 6, 8]
    poison = outcomes[2]
    assert not poison.ok
    assert poison.failure.reason == "timeout"
    assert poison.failure.attempts == 2  # first try + one retry, then quarantine
    assert poison.failure.label == "task-2"
    assert poison.failure.digest == task_digest(2)


@fork_only
def test_crashed_worker_quarantined_with_typed_failure(monkeypatch):
    monkeypatch.setenv("REPRO_TEST_CRASH_VALUE", "1")
    outcomes = map_many(
        _crash_on_planted, [0, 1, 2], jobs=2, salvage=True,
        supervisor=SupervisorConfig(max_retries=1, **FAST),
    )
    assert [o.ok for o in outcomes] == [True, False, True]
    assert outcomes[1].failure.reason == "worker-crash"
    assert outcomes[1].failure.attempts == 2


@fork_only
def test_healthy_workers_survive_retry_rounds(monkeypatch, tmp_path):
    """Only the dead worker is respawned: with 2 workers and a single
    crash, at most 3 distinct worker pids serve the whole batch."""
    monkeypatch.setenv("REPRO_TEST_CRASH_VALUE", "5")
    monkeypatch.setenv("REPRO_TEST_CRASH_ONCE_MARKER", str(tmp_path / "crashed"))
    outcomes = map_many(
        _crash_once_on_planted, list(range(10)), jobs=2, salvage=True,
        supervisor=SupervisorConfig(max_retries=2, **FAST),
    )
    assert all(o.ok for o in outcomes)
    retried = outcomes[5]
    assert retried.attempts == 2 and retried.value[0] == 5
    pids = {o.value[1] for o in outcomes}
    assert len(pids) <= 3, f"pool churned: {len(pids)} distinct worker pids"


# ---------------------------------------------------------------------------
# Resource guards
# ---------------------------------------------------------------------------
@fork_only
def test_rss_ceiling_kills_and_quarantines(monkeypatch):
    monkeypatch.setenv("REPRO_TEST_BLOAT_VALUE", "1")
    outcomes = map_many(
        _bloat_on_planted, [0, 1, 2], jobs=2, salvage=True,
        supervisor=SupervisorConfig(rss_limit_mb=96.0, max_retries=0, **FAST),
    )
    assert [o.ok for o in outcomes] == [True, False, True]
    assert outcomes[1].failure.reason == "rss-limit"
    assert outcomes[1].failure.attempts == 1
    assert [outcomes[0].value, outcomes[2].value] == [0, 4]


def test_runaway_deadline_degrades_to_serial():
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        outcomes = map_many(
            _double, list(range(8)), jobs=2, salvage=True,
            supervisor=SupervisorConfig(runaway_deadline=0.0, **FAST),
        )
    assert [o.value for o in outcomes] == [x * 2 for x in range(8)]
    degraded = [w for w in caught if issubclass(w.category, SupervisorDegradedWarning)]
    assert degraded, "expected a SupervisorDegradedWarning"


# ---------------------------------------------------------------------------
# Deterministic backoff
# ---------------------------------------------------------------------------
def test_backoff_is_deterministic_and_bounded():
    config = SupervisorConfig(backoff_seed=7, backoff_base=0.05, backoff_cap=2.0)
    digest = task_digest("some task")
    delays = [config.backoff(digest, attempt) for attempt in (1, 2, 3)]
    assert delays == [config.backoff(digest, a) for a in (1, 2, 3)]  # pure
    assert all(0.0 < d <= 2.0 for d in delays)
    other = SupervisorConfig(backoff_seed=8, backoff_base=0.05, backoff_cap=2.0)
    assert delays != [other.backoff(digest, a) for a in (1, 2, 3)]


# ---------------------------------------------------------------------------
# Campaign journal
# ---------------------------------------------------------------------------
META = {"kind": "test", "seed": 1}


def test_journal_roundtrip(tmp_path):
    path = tmp_path / "j.jsonl"
    journal, completed = CampaignJournal.open(path, META)
    assert completed == {}
    journal.append("aaa", {"x": 1})
    journal.append("bbb", {"y": [1.5, "z"]})
    journal.close()
    journal2, completed = CampaignJournal.open(path, META)
    journal2.close()
    assert completed == {"aaa": {"x": 1}, "bbb": {"y": [1.5, "z"]}}


def test_journal_append_after_close_refused(tmp_path):
    journal, _ = CampaignJournal.open(tmp_path / "j.jsonl", META)
    journal.close()
    with pytest.raises(JournalError):
        journal.append("aaa", {})


def test_journal_torn_final_line_dropped(tmp_path):
    path = tmp_path / "j.jsonl"
    with CampaignJournal.open(path, META)[0] as journal:
        journal.append("aaa", {"x": 1})
    # Simulate SIGKILL landing mid-write: a partial record, no newline.
    with path.open("a") as fh:
        fh.write('{"d": "bbb", "p"')
    _journal, completed = CampaignJournal.open(path, META)
    _journal.close()
    assert completed == {"aaa": {"x": 1}}  # torn record never became durable


def test_journal_interior_corruption_refused(tmp_path):
    path = tmp_path / "j.jsonl"
    with CampaignJournal.open(path, META)[0] as journal:
        journal.append("aaa", {"x": 1})
        journal.append("bbb", {"x": 2})
    lines = path.read_text().splitlines(keepends=True)
    lines[1] = lines[1].replace("aaa", "aXa")  # CRC now wrong, not final line
    path.write_text("".join(lines))
    with pytest.raises(JournalError, match="CRC"):
        CampaignJournal.open(path, META)


def test_journal_meta_mismatch_refused(tmp_path):
    path = tmp_path / "j.jsonl"
    CampaignJournal.open(path, META)[0].close()
    with pytest.raises(JournalError, match="different campaign"):
        CampaignJournal.open(path, {"kind": "test", "seed": 2})


def test_journal_version_mismatch_refused(tmp_path):
    path = tmp_path / "j.jsonl"
    path.write_text(_format_line({"h": dict(META), "v": 999}))
    with pytest.raises(JournalError, match="format 999"):
        CampaignJournal.open(path, META)


def test_journal_duplicate_digest_last_wins(tmp_path):
    path = tmp_path / "j.jsonl"
    with CampaignJournal.open(path, META)[0] as journal:
        journal.append("aaa", {"x": 1})
        journal.append("aaa", {"x": 2})
    _journal, completed = CampaignJournal.open(path, META)
    _journal.close()
    assert completed == {"aaa": {"x": 2}}


# ---------------------------------------------------------------------------
# supervise() validation
# ---------------------------------------------------------------------------
def test_supervise_empty_items():
    assert supervise(_double, []) == []


def test_map_many_rejects_negative_jobs():
    with pytest.raises(ValueError):
        map_many(_double, [1], jobs=-2, salvage=True)
