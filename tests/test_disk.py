"""Tests for the disk cost model."""

import pytest

from repro.config import CostModel
from repro.storage.disk import DiskModel


class TestUniformCost:
    def test_each_read_costs_t_b(self):
        disk = DiskModel(CostModel(t_b=0.05), n_atoms=100)
        assert disk.read_atom(3) == pytest.approx(0.05)
        assert disk.read_atom(90) == pytest.approx(0.05)
        assert disk.stats.reads == 2
        assert disk.stats.seconds == pytest.approx(0.10)

    def test_unknown_atom_raises(self):
        disk = DiskModel(CostModel(), n_atoms=10)
        with pytest.raises(KeyError):
            disk.read_atom(10)


class TestSequentialDiscount:
    def test_adjacent_reads_discounted(self):
        disk = DiskModel(CostModel(t_b=0.1, seq_discount=0.2), n_atoms=100)
        first = disk.read_atom(10)
        second = disk.read_atom(11)  # physically next block
        third = disk.read_atom(50)  # seek
        assert first == pytest.approx(0.1)
        assert second == pytest.approx(0.02)
        assert third == pytest.approx(0.1)
        assert disk.stats.sequential_reads == 1

    def test_morton_scan_is_sequential(self):
        """Reading a Morton-contiguous run through the clustered tree
        hits consecutive physical blocks — the property batches rely on."""
        disk = DiskModel(CostModel(t_b=1.0, seq_discount=0.5), n_atoms=64)
        total = sum(disk.read_atom(a) for a in range(16))
        assert total == pytest.approx(1.0 + 15 * 0.5)
        assert disk.stats.sequential_reads == 15

    def test_discount_validation(self):
        with pytest.raises(ValueError):
            CostModel(seq_discount=0.0)
        with pytest.raises(ValueError):
            CostModel(seq_discount=1.5)

    def test_repeat_same_atom_not_sequential(self):
        disk = DiskModel(CostModel(t_b=1.0, seq_discount=0.5), n_atoms=8)
        disk.read_atom(2)
        assert disk.read_atom(2) == pytest.approx(1.0)


class TestCostModelValidation:
    def test_positive_costs(self):
        with pytest.raises(ValueError):
            CostModel(t_b=0)
        with pytest.raises(ValueError):
            CostModel(t_m=-1)
        with pytest.raises(ValueError):
            CostModel(t_overhead=-0.1)
