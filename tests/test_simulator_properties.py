"""Property-based whole-system invariants: any generated workload, any
scheduler — every query completes exactly once, clocks are monotone,
gating never deadlocks, and accounting balances."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CacheConfig, CostModel, EngineConfig
from repro.engine.runner import make_scheduler
from repro.engine.simulator import Simulator
from repro.grid.dataset import DatasetSpec
from repro.workload.generator import WorkloadParams, generate_trace

SPEC = DatasetSpec.small(n_timesteps=5, atoms_per_axis=4)


def tiny_engine(capacity: int) -> EngineConfig:
    return EngineConfig(
        cost=CostModel(t_b=0.01, t_m=1e-5),
        cache=CacheConfig(capacity_atoms=capacity),
        run_length=7,
    )


@st.composite
def workload_cases(draw):
    seed = draw(st.integers(0, 2**31 - 1))
    n_jobs = draw(st.integers(2, 8))
    frac_tracking = draw(st.sampled_from([0.0, 0.3, 0.8]))
    think = draw(st.sampled_from([0.0, 1.5]))
    scheduler = draw(st.sampled_from(["noshare", "liferaft1", "liferaft2", "jaws1", "jaws2"]))
    capacity = draw(st.sampled_from([4, 16, 64]))
    return seed, n_jobs, frac_tracking, think, scheduler, capacity


class TestSystemInvariants:
    @settings(max_examples=25, deadline=None)
    @given(workload_cases())
    def test_everything_completes_and_balances(self, case):
        seed, n_jobs, frac_tracking, think, name, capacity = case
        trace = generate_trace(
            SPEC,
            WorkloadParams(
                n_jobs=n_jobs,
                span=40.0,
                frac_tracking=frac_tracking,
                frac_batched=0.2,
                think_time_mean=think,
                campaign_prob=0.5,
                seed=seed,
            ),
        )
        engine = tiny_engine(capacity)
        sim = Simulator(trace, [make_scheduler(name, trace, engine)], engine)
        result = sim.run()

        # Completeness: every query exactly once.
        assert result.n_queries == trace.n_queries
        assert result.n_jobs == trace.n_jobs
        # No gating deadlock, no liveness valve.
        assert result.forced_releases == 0
        # Physical sanity.
        assert (result.response_times >= -1e-9).all()
        assert result.makespan >= 0
        assert result.exec["busy_seconds"] <= result.makespan + 1e-6
        # Accounting: disk seconds = reads x t_b (uniform-cost model).
        assert result.disk["seconds"] == (
            result.disk["reads"] * engine.cost.t_b
        ) or abs(result.disk["seconds"] - result.disk["reads"] * engine.cost.t_b) < 1e-6
        # Every position evaluated exactly once.
        assert result.exec["positions"] == trace.n_positions
        # Cache accounting: misses == disk reads (every miss is one read).
        assert result.cache["misses"] == result.disk["reads"]
        # Cache capacity respected.
        assert len(sim.nodes[0].cache) <= capacity

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 2**31 - 1), st.integers(2, 4))
    def test_multinode_conserves_work(self, seed, n_nodes):
        from repro.cluster.partition import MortonRangePartitioner

        trace = generate_trace(
            SPEC, WorkloadParams(n_jobs=6, span=30.0, seed=seed)
        )
        engine = tiny_engine(16)
        part = MortonRangePartitioner(SPEC, n_nodes)
        sims = [make_scheduler("jaws2", trace, engine) for _ in range(n_nodes)]
        sim = Simulator(trace, sims, engine, node_of=part.node_of)
        result = sim.run()
        assert result.n_queries == trace.n_queries
        assert result.exec["positions"] == trace.n_positions
        # Primary work is routed by ownership; the only foreign atoms a
        # node may hold are stencil-neighbor *replicas* of atoms near
        # its partition boundary (the cluster replicates boundary data
        # precisely so interpolation never blocks on another node).
        index = SPEC.morton_index()
        per_step = SPEC.atoms_per_timestep
        for idx, node in enumerate(sim.nodes):
            for atom in node.cache.resident_atoms():
                if part.node_of(atom) == idx:
                    continue
                neighbors = index.neighbors(atom % per_step, radius=1)
                assert any(
                    part.node_of(int(n)) == idx for n in neighbors
                ), f"node {idx} cached non-boundary foreign atom {atom}"


class TestDeterminismAcrossRuns:
    @settings(max_examples=6, deadline=None)
    @given(st.integers(0, 2**31 - 1))
    def test_two_identical_runs_identical_results(self, seed):
        trace1 = generate_trace(SPEC, WorkloadParams(n_jobs=5, span=30.0, seed=seed))
        trace2 = generate_trace(SPEC, WorkloadParams(n_jobs=5, span=30.0, seed=seed))
        engine = tiny_engine(16)
        r1 = Simulator(trace1, [make_scheduler("jaws2", trace1, engine)], engine).run()
        r2 = Simulator(trace2, [make_scheduler("jaws2", trace2, engine)], engine).run()
        assert r1.makespan == r2.makespan
        np.testing.assert_array_equal(r1.response_times, r2.response_times)
        assert r1.disk["reads"] == r2.disk["reads"]
