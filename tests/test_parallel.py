"""Parallel-vs-serial bit-identity (DESIGN.md §10).

``run_many(specs, jobs=N)`` must be indistinguishable from the inline
serial path: same seed ⇒ same :class:`RunResult`, field for field, for
every scheduler, with faults off and on, and with the runtime sanitizer
attached.  Wall-clock overhead profiling counters
(``gating_overhead_ns``, ``cache_overhead_ns``, ``cache["overhead_ns"]``)
are the documented exception — they measure real time by design
(see DESIGN.md §7) and are stripped before comparison.

Worker-crash retry is exercised by monkeypatching the worker entry
point with a crashing stand-in; the patch reaches pool workers because
this platform forks them (tests are skipped under spawn/forkserver).
"""

import multiprocessing
import os
from pathlib import Path

import pytest

from repro.config import CacheConfig, CostModel, EngineConfig, FaultConfig
from repro.engine.runner import SCHEDULER_NAMES, run_trace
from repro.errors import SimulationError, WorkerCrashError
from repro.experiments.report import render_table
from repro.grid.dataset import DatasetSpec
from repro.parallel import RunSpec, run_many
from repro.parallel import pool as pool_module
from repro.workload.generator import WorkloadParams, generate_trace

SPEC = DatasetSpec.small(n_timesteps=6, atoms_per_axis=4)

#: Wall-clock profiling counters excluded from bit-identity (they time
#: real bookkeeping cost and legitimately differ between processes).
WALL_CLOCK_KEYS = frozenset({"gating_overhead_ns", "cache_overhead_ns"})

FAULTS = FaultConfig(
    seed=11,
    transient_fault_rate=0.05,
    permanent_loss_rate=0.01,
    slow_read_rate=0.05,
)

fork_only = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="crash injection relies on fork inheriting the monkeypatch",
)


def small_trace(seed=0, n_jobs=15):
    return generate_trace(SPEC, WorkloadParams(n_jobs=n_jobs, span=120.0, seed=seed))


def engine(**kwargs):
    return EngineConfig(
        cost=CostModel(t_b=0.02, t_m=1e-5),
        cache=CacheConfig(capacity_atoms=32),
        run_length=10,
        **kwargs,
    )


def comparable(result):
    """``RunResult.to_dict()`` with wall-clock profiling stripped."""
    d = result.to_dict()
    for key in WALL_CLOCK_KEYS:
        d.pop(key)
    d["cache"] = {k: v for k, v in d["cache"].items() if k != "overhead_ns"}
    return d


def assert_identical(serial, parallel):
    a, b = comparable(serial), comparable(parallel)
    assert set(a) == set(b)
    for key in a:
        assert a[key] == b[key], f"to_dict()[{key!r}] differs parallel vs serial"


# ---------------------------------------------------------------------------
# Bit-identity: all five schedulers × faults off/on, one pooled fan-out.
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def identity_runs():
    """Serial and pooled results for every (scheduler, faults) combo.

    One ``run_many(..., jobs=2)`` call over the full spec list also
    checks that pooled results come back in spec order.
    """
    trace = small_trace()
    specs = [
        RunSpec(trace, name, engine(), faults=faults, label=f"{name}/{tag}")
        for faults, tag in ((None, "clean"), (FAULTS, "faults"))
        for name in SCHEDULER_NAMES
    ]
    serial = run_many(specs, jobs=1)
    parallel = run_many(specs, jobs=2)
    return specs, serial, parallel


@pytest.mark.parametrize("faulty", [False, True], ids=["clean", "faults"])
@pytest.mark.parametrize("name", SCHEDULER_NAMES)
def test_parallel_matches_serial(identity_runs, name, faulty):
    specs, serial, parallel = identity_runs
    index = next(
        i
        for i, spec in enumerate(specs)
        if spec.scheduler == name and (spec.faults is not None) == faulty
    )
    assert_identical(serial[index], parallel[index])


def test_results_come_back_in_spec_order(identity_runs):
    specs, serial, parallel = identity_runs
    for spec, serial_result, parallel_result in zip(specs, serial, parallel):
        expected = {
            "noshare": "NoShare",
            "liferaft1": "LifeRaft(alpha=1)",
            "liferaft2": "LifeRaft(alpha=0)",
            "jaws1": "JAWS_1",
            "jaws2": "JAWS_2",
        }[spec.scheduler]
        assert serial_result.scheduler_name == expected
        assert parallel_result.scheduler_name == expected


def test_experiments_style_table_identical(identity_runs):
    """The rendered EXPERIMENTS-style table is byte-for-byte identical."""
    specs, serial, parallel = identity_runs

    def table(results):
        rows = [
            (
                spec.label,
                r.throughput_qps,
                r.mean_response_time,
                r.cache_hit_ratio,
                r.disk["reads"],
            )
            for spec, r in zip(specs, results)
        ]
        return render_table(
            ["run", "qps", "mean_rt_s", "cache_hit", "reads"],
            rows,
            title="parallel identity check",
        )

    assert table(serial) == table(parallel)


def test_parallel_matches_serial_with_sanitizer():
    trace = small_trace(seed=3)
    specs = [RunSpec(trace, name, engine(sanitize=True)) for name in ("noshare", "jaws2")]
    serial = run_many(specs, jobs=1)
    parallel = run_many(specs, jobs=2)
    for a, b in zip(serial, parallel):
        assert_identical(a, b)


def test_inline_path_equals_run_trace():
    trace = small_trace(seed=1)
    spec = RunSpec(trace, "jaws2", engine())
    (inline,) = run_many([spec], jobs=4)  # single spec short-circuits inline
    direct = run_trace(trace, "jaws2", engine())
    assert_identical(inline, direct)


# ---------------------------------------------------------------------------
# Validation and crash handling
# ---------------------------------------------------------------------------
def test_negative_jobs_rejected():
    with pytest.raises(ValueError):
        run_many([], jobs=-1)


def test_empty_specs():
    assert run_many([], jobs=4) == []


def _crash_marker_path():
    return Path(os.environ["REPRO_TEST_CRASH_MARKER"])


def _crash_twice_then_run(spec):
    """Worker stand-in: die abnormally until two markers exist."""
    marker = _crash_marker_path()
    count = len(list(marker.parent.glob("crash-*")))
    if count < 2:
        (marker.parent / f"crash-{count}").touch()
        os._exit(13)  # simulates a hard worker death (no exception)
    return pool_module.run_trace(
        spec.trace, spec.scheduler, engine=spec.engine,
        config=spec.scheduler_config, faults=spec.faults,
    )


def _always_crash(spec):
    os._exit(13)


@fork_only
def test_worker_crash_retries_then_succeeds(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_TEST_CRASH_MARKER", str(tmp_path / "marker"))
    monkeypatch.setattr(pool_module, "_execute_spec", _crash_twice_then_run)
    trace = small_trace(seed=2, n_jobs=6)
    specs = [RunSpec(trace, "jaws2", engine())] * 2
    results = pool_module.run_many(specs, jobs=2, max_retries=2)
    reference = run_trace(trace, "jaws2", engine())
    for result in results:
        assert_identical(result, reference)


@fork_only
def test_worker_crash_exhausts_retries(monkeypatch):
    monkeypatch.setattr(pool_module, "_execute_spec", _always_crash)
    trace = small_trace(seed=2, n_jobs=6)
    specs = [RunSpec(trace, "jaws2", engine())] * 2
    with pytest.raises(WorkerCrashError) as excinfo:
        pool_module.run_many(specs, jobs=2, max_retries=1)
    assert isinstance(excinfo.value, SimulationError)
    assert excinfo.value.attempts == 2


def test_deterministic_errors_propagate_without_retry():
    trace = small_trace(seed=0, n_jobs=4)
    with pytest.raises(Exception):
        run_many([RunSpec(trace, "no-such-scheduler"), RunSpec(trace, "jaws2")], jobs=2)
