"""Tests for two-level batch selection."""

import numpy as np
import pytest

from repro.core.two_level import select_two_level


def run(atom_ids, timesteps, u_t, k, u_e=None):
    atom_ids = np.asarray(atom_ids)
    timesteps = np.asarray(timesteps)
    u_t = np.asarray(u_t, dtype=float)
    u_e = u_t if u_e is None else np.asarray(u_e, dtype=float)
    return select_two_level(atom_ids, timesteps, u_t, u_e, k)


class TestTimestepSelection:
    def test_densest_timestep_wins(self):
        # Step 0: one hot atom (5). Step 1: three warm atoms (3+3+3=9).
        chosen = run([0, 100, 101, 102], [0, 1, 1, 1], [5, 3, 3, 3], k=10)
        assert chosen == [100, 101, 102]

    def test_single_atom_case(self):
        assert run([7], [0], [1.0], k=5) == [7]

    def test_empty(self):
        assert run([], [], [], k=3) == []

    def test_k_validated(self):
        with pytest.raises(ValueError):
            run([1], [0], [1.0], k=0)


class TestAtomFilter:
    def test_above_mean_only(self):
        # Mean of (10, 2, 2, 2) = 4: only the 10 qualifies.
        chosen = run([1, 2, 3, 4], [0, 0, 0, 0], [10, 2, 2, 2], k=10)
        assert chosen == [1]

    def test_all_equal_all_qualify(self):
        chosen = run([1, 2, 3], [0, 0, 0], [4, 4, 4], k=10)
        assert chosen == [1, 2, 3]

    def test_k_caps_batch(self):
        ids = list(range(20))
        chosen = run(ids, [0] * 20, list(range(20, 0, -1)), k=5)
        assert len(chosen) == 5

    def test_k_picks_best_by_aged_metric(self):
        u_t = [10, 10, 10, 10]
        u_e = [1, 4, 3, 2]
        chosen = run([5, 6, 7, 8], [0, 0, 0, 0], u_t, k=2, u_e=u_e)
        assert sorted(chosen) == [6, 7]


class TestMortonOrdering:
    def test_batch_sorted_by_atom_id(self):
        ids = [42, 7, 99, 13]
        chosen = run(ids, [0] * 4, [5, 5, 5, 5], k=4)
        assert chosen == sorted(ids)

    def test_ties_break_to_lower_morton(self):
        # k=2 of four equal atoms: the two lowest ids win.
        chosen = run([40, 10, 30, 20], [0] * 4, [1, 1, 1, 1], k=2)
        assert chosen == [10, 20]
