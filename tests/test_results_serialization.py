"""RunResult ``to_dict``/``from_dict`` round trip, including fault and
recovery counters, survives ``json.dumps``/``json.loads`` losslessly."""

import dataclasses
import json

import numpy as np
import pytest

from repro.config import FaultConfig
from repro.engine.results import RunResult
from repro.engine.runner import run_trace

from tests.test_determinism import engine, small_trace

FAULTS = FaultConfig(
    seed=11,
    transient_fault_rate=0.05,
    permanent_loss_rate=0.01,
    slow_read_rate=0.05,
    query_deadline=500.0,
)


def roundtrip(result: RunResult) -> RunResult:
    payload = json.dumps(result.to_dict(), sort_keys=True)
    return RunResult.from_dict(json.loads(payload))


def assert_equal_results(a: RunResult, b: RunResult) -> None:
    """Field-for-field equality (dict key *order* is not significant —
    JSON sorts object keys; values must match exactly)."""
    for f in dataclasses.fields(RunResult):
        va, vb = getattr(a, f.name), getattr(b, f.name)
        if isinstance(va, np.ndarray):
            assert vb.dtype == va.dtype, f.name
            assert np.array_equal(va, vb), f.name
        else:
            assert va == vb, f"RunResult.{f.name} changed across the round trip"


@pytest.mark.parametrize("name", ["jaws2", "noshare"])
def test_roundtrip_plain_run(name):
    result = run_trace(small_trace(), name, engine())
    restored = roundtrip(result)
    assert_equal_results(result, restored)
    # Wall-clock fields travel too (they're excluded from determinism
    # comparisons, not from serialization).
    assert restored.gating_overhead_ns == result.gating_overhead_ns
    assert restored.cache_overhead_ns == result.cache_overhead_ns


def test_roundtrip_with_fault_counters():
    result = run_trace(small_trace(), "jaws2", engine(faults=FAULTS))
    assert result.faults  # the fault block is populated
    restored = roundtrip(result)
    assert_equal_results(result, restored)
    assert restored.faults == result.faults
    assert restored.timeouts == result.timeouts
    assert restored.retries == result.retries
    assert restored.failovers == result.failovers
    assert restored.cancelled_queries == result.cancelled_queries


def test_roundtrip_preserves_types():
    result = run_trace(small_trace(), "jaws2", engine())
    restored = roundtrip(result)
    assert isinstance(restored.response_times, np.ndarray)
    assert restored.response_times.dtype == np.float64
    assert np.array_equal(restored.response_times, result.response_times)
    # JSON object keys are strings; from_dict restores the int keys.
    assert restored.job_durations == result.job_durations
    assert all(isinstance(k, int) for k in restored.job_durations)
    assert [dataclasses.astuple(o) for o in restored.runs] == [
        dataclasses.astuple(o) for o in result.runs
    ]
    # Derived metrics come out identical.
    assert restored.summary() == result.summary()
    assert restored.fault_summary() == result.fault_summary()
