"""Tests for the hierarchical Morton index."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.morton.index import MortonIndex


class TestConstruction:
    def test_side_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            MortonIndex(12)

    def test_side_must_be_positive(self):
        with pytest.raises(ValueError):
            MortonIndex(0)

    def test_levels(self):
        assert MortonIndex(1).levels == 0
        assert MortonIndex(16).levels == 4

    def test_n_atoms(self):
        assert MortonIndex(16).n_atoms == 4096  # the production grid


class TestEncodeDecode:
    def test_bounds_checked(self):
        idx = MortonIndex(8)
        with pytest.raises(ValueError):
            idx.encode(np.array([8]), np.array([0]), np.array([0]))
        with pytest.raises(ValueError):
            idx.decode(np.array([512], dtype=np.uint64))

    def test_all_codes_bijective(self):
        idx = MortonIndex(4)
        codes = np.arange(64, dtype=np.uint64)
        x, y, z = idx.decode(codes)
        np.testing.assert_array_equal(idx.encode(x, y, z), codes)


class TestCubeRange:
    def test_whole_grid(self):
        idx = MortonIndex(8)
        assert idx.cube_range(0, 0, 0, 3) == (0, 512)

    def test_single_atom(self):
        idx = MortonIndex(8)
        lo, hi = idx.cube_range(3, 5, 7, 0)
        assert hi - lo == 1

    def test_unaligned_rejected(self):
        idx = MortonIndex(8)
        with pytest.raises(ValueError):
            idx.cube_range(1, 0, 0, 1)

    def test_oversized_rejected(self):
        with pytest.raises(ValueError):
            MortonIndex(4).cube_range(0, 0, 0, 3)

    def test_octant_ranges_partition_grid(self):
        idx = MortonIndex(4)
        ranges = [
            idx.cube_range(x, y, z, 1)
            for z in (0, 2)
            for y in (0, 2)
            for x in (0, 2)
        ]
        covered = sorted(ranges)
        assert covered[0][0] == 0
        assert covered[-1][1] == 64
        for (a, b), (c, d) in zip(covered, covered[1:]):
            assert b == c  # contiguous, disjoint


class TestBoxQueries:
    def brute_force(self, idx, lo, hi):
        out = []
        for x in range(lo[0], hi[0] + 1):
            for y in range(lo[1], hi[1] + 1):
                for z in range(lo[2], hi[2] + 1):
                    out.append(
                        int(idx.encode(np.array([x]), np.array([y]), np.array([z]))[0])
                    )
        return sorted(out)

    def test_full_grid_box_is_one_range(self):
        idx = MortonIndex(8)
        assert idx.box_to_ranges((0, 0, 0), (7, 7, 7)) == [(0, 512)]

    def test_invalid_box_rejected(self):
        idx = MortonIndex(8)
        with pytest.raises(ValueError):
            idx.box_to_ranges((2, 0, 0), (1, 7, 7))
        with pytest.raises(ValueError):
            idx.box_to_ranges((0, 0, 0), (8, 0, 0))

    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_box_codes_match_brute_force(self, data):
        idx = MortonIndex(8)
        lo = [data.draw(st.integers(0, 7), label=f"lo{a}") for a in range(3)]
        hi = [data.draw(st.integers(lo[a], 7), label=f"hi{a}") for a in range(3)]
        codes = idx.box_codes(tuple(lo), tuple(hi))
        assert sorted(int(c) for c in codes) == self.brute_force(idx, lo, hi)
        # Morton (ascending) order is the scan order.
        assert list(codes) == sorted(codes)

    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_ranges_are_disjoint_sorted_coalesced(self, data):
        idx = MortonIndex(8)
        lo = [data.draw(st.integers(0, 7)) for _ in range(3)]
        hi = [data.draw(st.integers(lo[a], 7)) for a in range(3)]
        ranges = idx.box_to_ranges(tuple(lo), tuple(hi))
        for (a, b), (c, d) in zip(ranges, ranges[1:]):
            assert b < c  # sorted, disjoint, and coalesced (no b == c)


class TestNeighbors:
    def test_interior_count(self):
        idx = MortonIndex(8)
        center = int(idx.encode(np.array([4]), np.array([4]), np.array([4]))[0])
        assert len(idx.neighbors(center, radius=1)) == 26

    def test_periodic_wrap(self):
        idx = MortonIndex(8)
        corner = int(idx.encode(np.array([0]), np.array([0]), np.array([0]))[0])
        neighbors = idx.neighbors(corner, radius=1, periodic=True)
        assert len(neighbors) == 26
        xs, ys, zs = idx.decode(neighbors)
        assert 7 in xs  # wrapped to the far face

    def test_non_periodic_corner(self):
        idx = MortonIndex(8)
        corner = int(idx.encode(np.array([0]), np.array([0]), np.array([0]))[0])
        assert len(idx.neighbors(corner, radius=1, periodic=False)) == 7

    def test_excludes_self(self):
        idx = MortonIndex(4)
        assert 0 not in idx.neighbors(0, radius=1)
