"""Tests for the experiment harness plumbing: report rendering, CSV
export, the api facade, and the common configs (fast paths only — the
full experiments run in benchmarks/)."""

import csv

import pytest

from repro.api import build_workload, compare_schedulers, run_experiment
from repro.experiments.common import (
    STANDARD_SPEEDUP,
    ExperimentScale,
    standard_engine,
    standard_params,
    standard_scheduler_config,
    standard_spec,
    standard_trace,
)
from repro.experiments.export import export_fig10, export_fig12, write_rows
from repro.experiments.report import render_kv, render_series, render_table
from repro.workload.generator import WorkloadParams, generate_trace


class TestReport:
    def test_render_table_alignment(self):
        out = render_table(["a", "longer"], [(1, 2.34567), ("xy", 3.0)], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "2.346" in out
        assert "xy" in out

    def test_render_table_empty(self):
        out = render_table(["col"], [])
        assert "col" in out

    def test_render_series_sparkline(self):
        out = render_series("s", [1, 2], [1.0, 2.0])
        assert out.count("#") > 0
        assert "2.000" in out

    def test_render_series_zero_max(self):
        out = render_series("s", [1], [0.0])
        assert "0.000" in out

    def test_render_kv(self):
        out = render_kv("title", {"alpha": 0.5, "note": "x"})
        assert "alpha" in out and "0.5" in out and "x" in out


class TestExport:
    def test_write_rows_roundtrip(self, tmp_path):
        p = write_rows(tmp_path / "x.csv", ["a", "b"], [(1, 2), (3, 4)])
        with p.open() as fh:
            rows = list(csv.reader(fh))
        assert rows == [["a", "b"], ["1", "2"], ["3", "4"]]

    def test_export_fig10_shape(self, tmp_path):
        data = {
            "rows": {
                "noshare": {
                    "throughput_qps": 1.0,
                    "relative": 1.0,
                    "paper_relative": 1.0,
                    "mean_rt": 2.0,
                    "cache_hit": 0.5,
                    "disk_reads": 10,
                }
            }
        }
        p = export_fig10(data, tmp_path / "f10.csv")
        content = p.read_text()
        assert "noshare" in content

    def test_export_fig12_shape(self, tmp_path):
        data = {"ks": [1, 5], "throughput": [0.5, 0.6], "liferaft2": 0.4}
        p = export_fig12(data, tmp_path / "f12.csv")
        assert "liferaft2" in p.read_text()


class TestCommonConfigs:
    def test_standard_spec_matches_paper_sample(self):
        spec = standard_spec()
        assert spec.n_timesteps == 31  # the 800GB sample's step count
        assert spec.atom_side == 64

    def test_scales_differ_in_size(self):
        small = standard_params(ExperimentScale.SMALL)
        full = standard_params(ExperimentScale.FULL)
        assert full.n_jobs > small.n_jobs
        assert full.span > small.span

    def test_engine_matches_paper_cache(self):
        eng = standard_engine()
        assert eng.cache.capacity_atoms == 256  # 2GB of 8MB atoms
        assert eng.cache.policy == "lruk"

    def test_scheduler_config_paper_defaults(self):
        cfg = standard_scheduler_config()
        assert cfg.alpha == 0.5
        assert cfg.batch_size == 15
        assert cfg.adaptive_alpha

    def test_scheduler_config_overrides(self):
        cfg = standard_scheduler_config(batch_size=3, job_aware=False)
        assert cfg.batch_size == 3
        assert not cfg.job_aware

    def test_standard_trace_rescaled(self):
        t1 = standard_trace(ExperimentScale.SMALL, speedup=1.0, seed=3)
        t8 = standard_trace(ExperimentScale.SMALL, speedup=STANDARD_SPEEDUP, seed=3)
        assert t8.span == pytest.approx(t1.span / STANDARD_SPEEDUP)


class TestApiFacade:
    def small_trace(self):
        spec = standard_spec()
        return generate_trace(spec, WorkloadParams(n_jobs=8, span=60.0, seed=1))

    def test_build_workload_speedup(self):
        t = build_workload(params=WorkloadParams(n_jobs=8, span=60.0, seed=1), speedup=2.0)
        assert t.n_jobs >= 8

    def test_run_experiment(self):
        result = run_experiment(self.small_trace(), "liferaft2")
        assert result.n_queries > 0

    def test_compare_schedulers(self):
        out = compare_schedulers(self.small_trace(), schedulers=("noshare", "jaws2"))
        assert set(out) == {"noshare", "jaws2"}
        assert all(r.n_queries > 0 for r in out.values())
