"""Tests for the replacement policies: LRU, LRU-K, SLRU, URC."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.base import available_policies, make_policy
from repro.cache.lruk import LRUKPolicy
from repro.cache.slru import SLRUPolicy
from repro.cache.urc import URCPolicy
from repro.storage.buffer import BufferCache


class TestRegistry:
    def test_all_registered(self):
        assert set(available_policies()) >= {"lru", "lruk", "slru", "urc"}

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_policy("belady")

    def test_kwargs_forwarded(self):
        policy = make_policy("slru", capacity=100, protected_fraction=0.1)
        assert isinstance(policy, SLRUPolicy)


class TestLRUK:
    def test_validation(self):
        with pytest.raises(ValueError):
            LRUKPolicy(k=0)

    def test_prefers_single_reference_victims(self):
        """Scan resistance: an atom referenced once goes before an atom
        referenced K times, regardless of recency."""
        cache = BufferCache(3, LRUKPolicy(k=2))
        cache.access(1, 0.0)
        cache.access(1, 1.0)  # atom 1 has full K-history
        cache.access(2, 2.0)
        cache.access(2, 3.0)  # atom 2 has full K-history
        cache.access(3, 4.0)  # atom 3: one reference (most recent!)
        cache.access(4, 5.0)  # forces eviction
        assert 3 not in cache
        assert 1 in cache and 2 in cache and 4 in cache

    def test_kth_distance_ordering(self):
        cache = BufferCache(2, LRUKPolicy(k=2))
        cache.access(1, 0.0)
        cache.access(1, 10.0)  # kth ref at t=0
        cache.access(2, 1.0)
        cache.access(2, 2.0)  # kth ref at t=1
        cache.access(3, 20.0)  # evict: both have K refs; 1's kth (0) < 2's (1)
        assert 1 not in cache and 2 in cache

    def test_retained_history_survives_eviction(self):
        policy = LRUKPolicy(k=2, retained_history=10)
        cache = BufferCache(2, policy)
        cache.access(1, 0.0)
        cache.access(1, 1.0)
        cache.access(2, 2.0)
        cache.access(3, 3.0)  # evicts 2 (short history)
        assert 2 not in cache
        cache.access(2, 4.0)  # re-fetch: history {2.0} retained -> now full
        cache.access(4, 5.0)  # someone must go; 3 has shortest history
        assert 3 not in cache

    def test_victim_on_empty_raises(self):
        with pytest.raises(RuntimeError):
            LRUKPolicy().choose_victim()


class TestSLRU:
    def test_validation(self):
        with pytest.raises(ValueError):
            SLRUPolicy(capacity=0)
        with pytest.raises(ValueError):
            SLRUPolicy(capacity=10, protected_fraction=1.5)

    def test_victims_come_from_probation(self):
        policy = SLRUPolicy(capacity=4, protected_fraction=0.25)
        cache = BufferCache(4, policy)
        for a in (1, 2, 3):
            cache.access(a, float(a))
        # Atom 1 heavily accessed this run.
        for t in range(5):
            cache.access(1, 10.0 + t)
        cache.run_boundary()  # promotes 1 into protected
        assert policy.protected_size == 1
        cache.access(4, 20.0)
        cache.access(5, 21.0)  # evicts from probation, not atom 1
        assert 1 in cache

    def test_promotion_capacity_bounded(self):
        policy = SLRUPolicy(capacity=10, protected_fraction=0.2)  # 2 slots
        cache = BufferCache(10, policy)
        for a in range(6):
            for _ in range(a + 1):
                cache.access(a, float(a))
        cache.run_boundary()
        assert policy.protected_size <= 2

    def test_demotion_on_new_top_set(self):
        policy = SLRUPolicy(capacity=4, protected_fraction=0.25)  # 1 slot
        cache = BufferCache(4, policy)
        for _ in range(5):
            cache.access(1, 0.0)
        cache.run_boundary()
        assert policy.protected_size == 1
        for _ in range(9):
            cache.access(2, 1.0)
        cache.access(1, 2.0)
        cache.run_boundary()  # 2 displaces 1
        assert policy.protected_size == 1
        cache.access(3, 3.0)
        cache.access(4, 4.0)
        cache.access(5, 5.0)  # evictions hit probation; 2 must survive
        assert 2 in cache

    def test_run_counts_cleared(self):
        policy = SLRUPolicy(capacity=4)
        cache = BufferCache(4, policy)
        cache.access(1, 0.0)
        cache.run_boundary()
        cache.run_boundary()  # no accesses since; should be a no-op
        assert 1 in cache


class TestURC:
    def test_lru_fallback_without_utility(self):
        cache = BufferCache(2, URCPolicy())
        cache.access(1, 0.0)
        cache.access(2, 1.0)
        cache.access(3, 2.0)
        assert 1 not in cache  # plain LRU order

    def test_evicts_lowest_utility(self):
        policy = URCPolicy()
        utility = {1: (5.0, 1.0), 2: (0.5, 9.0), 3: (5.0, 2.0)}
        policy.set_utility_fn(lambda a: utility.get(a, (0.0, 0.0)))
        cache = BufferCache(3, policy)
        for a in (1, 2, 3):
            cache.access(a, float(a))
        cache.access(4, 10.0)  # atom 2's time step has lowest mean -> victim
        assert 2 not in cache

    def test_within_timestep_increasing_throughput(self):
        policy = URCPolicy()
        utility = {1: (5.0, 1.0), 3: (5.0, 2.0), 4: (9.0, 0.1)}
        policy.set_utility_fn(lambda a: utility.get(a, (0.0, 0.0)))
        cache = BufferCache(3, policy)
        for a in (1, 3, 4):
            cache.access(a, float(a))
        cache.access(5, 10.0)  # same step mean for 1 and 3: evict lower U_t = 1
        assert 1 not in cache and 3 in cache

    def test_invalidation_forces_recompute(self):
        policy = URCPolicy()
        state = {"v": {1: (1.0, 1.0), 2: (2.0, 2.0)}}
        policy.set_utility_fn(lambda a: state["v"].get(a, (0.0, 0.0)))
        cache = BufferCache(2, policy)
        cache.access(1, 0.0)
        cache.access(2, 1.0)
        # Flip the ranking and invalidate.
        state["v"] = {1: (2.0, 2.0), 2: (1.0, 1.0)}
        policy.invalidate_utilities()
        cache.access(3, 2.0)
        assert 2 not in cache and 1 in cache

    def test_victim_on_empty_raises(self):
        with pytest.raises(RuntimeError):
            URCPolicy().choose_victim()


class TestPolicyInvariantsProperty:
    @settings(max_examples=30, deadline=None)
    @given(
        st.sampled_from(["lru", "lruk", "slru", "urc"]),
        st.lists(st.integers(0, 20), min_size=1, max_size=300),
        st.integers(1, 8),
    )
    def test_capacity_and_victim_validity(self, name, accesses, capacity):
        """Any access sequence keeps residency <= capacity, and every
        access after the first to the same atom without interleaved
        eviction is a hit."""
        if name == "slru":
            policy = make_policy(name, capacity=capacity)
        else:
            policy = make_policy(name)
        cache = BufferCache(capacity, policy)
        for t, atom in enumerate(accesses):
            resident_before = atom in cache
            hit = cache.access(atom, float(t))
            assert hit == resident_before
            assert len(cache) <= capacity
            assert atom in cache  # just-accessed atoms are resident
        assert cache.stats.accesses == len(accesses)
