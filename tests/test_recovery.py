"""Crash-consistent checkpointing and deterministic recovery (DESIGN.md §8).

The contract under test: for any coordinator-crash point, crashing and
resuming via ``Simulator.restore`` yields a :class:`RunResult`
bit-identical to the uninterrupted same-seed run — and recovery REFUSES
(:class:`RecoveryError`) whenever a snapshot or WAL cannot be trusted
(version mismatch, corruption, truncation, replay divergence).

The broad randomized sweep lives in ``tests/test_recovery_soak.py``
(slow-marked, run by the CI chaos-soak job); this file covers the
mechanism and every refusal path.
"""

import dataclasses
import json
import struct

import pytest

from repro.cluster.cluster import run_cluster
from repro.config import CheckpointConfig, FaultConfig
from repro.engine.runner import make_scheduler
from repro.engine.simulator import Simulator
from repro.errors import CoordinatorCrash, RecoveryError, SimulationError
from repro.recovery.codec import (
    SNAPSHOT_FORMAT_VERSION,
    SNAPSHOT_MAGIC,
    decode_snapshot,
    encode_snapshot,
)
from repro.recovery.wal import WalRecord, format_record, read_wal

from tests.test_determinism import assert_identical, engine, small_trace

FAULTS = FaultConfig(
    seed=11,
    transient_fault_rate=0.05,
    permanent_loss_rate=0.01,
    slow_read_rate=0.05,
)


def build_sim(trace, name, *, checkpoint=None, crash_at=None, sanitize=True):
    faults = dataclasses.replace(FAULTS, coordinator_crash_at=crash_at)
    cfg = engine(
        faults=faults,
        checkpoint=checkpoint or CheckpointConfig(),
        sanitize=sanitize,
    )
    return Simulator(trace, [make_scheduler(name, trace, cfg)], cfg)


def crash_and_leave_artifacts(tmp_path, trace, name, crash_at, every_events=20):
    """Run to the injected crash; returns the checkpoint directory."""
    ckpt_dir = tmp_path / f"ckpt-{name}-{crash_at}"
    checkpoint = CheckpointConfig(directory=str(ckpt_dir), every_events=every_events)
    sim = build_sim(trace, name, checkpoint=checkpoint, crash_at=crash_at)
    with pytest.raises(CoordinatorCrash):
        sim.run()
    return ckpt_dir


# ---------------------------------------------------------------------------
# Crash + restore = bit-identical
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("crash_at", [1, 5, 37, 120])
def test_crash_restore_bit_identical(tmp_path, crash_at):
    trace = small_trace()
    baseline = build_sim(trace, "jaws2").run()
    ckpt_dir = crash_and_leave_artifacts(tmp_path, trace, "jaws2", crash_at)
    resumed = Simulator.restore(ckpt_dir).run()
    assert_identical(baseline, resumed)


@pytest.mark.parametrize("name", ["noshare", "liferaft2"])
def test_crash_restore_other_schedulers(tmp_path, name):
    trace = small_trace()
    baseline = build_sim(trace, name).run()
    ckpt_dir = crash_and_leave_artifacts(tmp_path, trace, name, crash_at=60)
    assert_identical(baseline, Simulator.restore(ckpt_dir).run())


def test_crash_restore_cluster(tmp_path):
    trace = small_trace()
    faults = dataclasses.replace(FAULTS, replication=2)
    baseline = run_cluster(trace, "jaws2", 2, engine=engine(faults=faults)).result

    ckpt_dir = tmp_path / "cluster-ckpt"
    crashing = dataclasses.replace(faults, coordinator_crash_at=80)
    cfg = engine(
        faults=crashing,
        checkpoint=CheckpointConfig(directory=str(ckpt_dir), every_events=25),
        sanitize=True,
    )
    with pytest.raises(CoordinatorCrash):
        run_cluster(trace, "jaws2", 2, engine=cfg)
    resumed = Simulator.restore(ckpt_dir)
    assert len(resumed.nodes) == 2
    assert_identical(baseline, resumed.run())


def test_crash_window_draws_deterministic_point():
    trace = small_trace()
    faults = dataclasses.replace(FAULTS, coordinator_crash_window=(10, 200))
    cfg = engine(faults=faults)
    sims = [Simulator(trace, [make_scheduler("jaws2", trace, cfg)], cfg) for _ in range(2)]
    assert sims[0].injector.crash_at == sims[1].injector.crash_at
    assert 10 <= sims[0].injector.crash_at < 200


def test_crash_window_past_trace_end_is_clamped_and_fires(tmp_path):
    """A window drawn entirely past the trace's last event used to
    schedule a crash that never fired (silently testing nothing).  The
    injector now clamps window draws to the guaranteed event floor, so
    the crash always lands inside the live range — and the run is still
    resumable to a bit-identical result."""
    trace = small_trace()
    baseline = build_sim(trace, "jaws2").run()

    faults = dataclasses.replace(FAULTS, coordinator_crash_window=(100_000, 200_000))
    ckpt_dir = tmp_path / "ckpt-window"
    cfg = engine(
        faults=faults,
        checkpoint=CheckpointConfig(directory=str(ckpt_dir), every_events=10),
        sanitize=True,
    )
    sim = Simulator(trace, [make_scheduler("jaws2", trace, cfg)], cfg)
    guaranteed = len(trace.jobs) + 2 * len(faults.node_crashes)
    assert 1 <= sim.injector.crash_at < guaranteed
    with pytest.raises(CoordinatorCrash):
        sim.run()
    resumed = Simulator.restore(ckpt_dir).run()
    assert_identical(baseline, resumed)
    # The resumed result reports that its lifecycle really crashed.
    assert resumed.faults["crash_effective"] is True


def test_explicit_crash_at_is_not_clamped():
    """Only window draws are clamped; an explicit index is honored
    verbatim (callers probing past-the-end behavior on purpose)."""
    trace = small_trace()
    sim = build_sim(trace, "jaws2", crash_at=100_000)
    assert sim.injector.crash_at == 100_000
    result = sim.run()  # never reaches event 100000 -> completes
    assert result.faults["crash_effective"] is False


def test_crash_effective_reported_on_completed_armed_run():
    """crash_effective distinguishes 'armed and fired' from 'armed but
    the run ended first' — and is excluded from bit-identity."""
    trace = small_trace()
    armed = build_sim(trace, "jaws2", crash_at=100_000).run()
    unarmed = build_sim(trace, "jaws2").run()
    assert armed.faults["crash_effective"] is False
    assert unarmed.faults["crash_effective"] is False
    assert_identical(armed, unarmed)


def test_restore_disarms_crash_and_keeps_wal_appendable(tmp_path):
    trace = small_trace()
    ckpt_dir = crash_and_leave_artifacts(tmp_path, trace, "jaws2", crash_at=40)
    sim = Simulator.restore(ckpt_dir)
    assert sim.injector.crash_at is None  # no immediate re-crash
    first = sim.run()
    # The run continued past the crash point and kept checkpointing:
    # restoring AGAIN from the same directory still works and replays
    # to the same final result.
    again = Simulator.restore(ckpt_dir).run()
    assert_identical(first, again)


# ---------------------------------------------------------------------------
# Snapshot policy
# ---------------------------------------------------------------------------
def test_every_seconds_policy_produces_snapshots(tmp_path):
    trace = small_trace()
    ckpt_dir = tmp_path / "by-time"
    checkpoint = CheckpointConfig(directory=str(ckpt_dir), every_seconds=20.0, keep=100)
    build_sim(trace, "jaws2", checkpoint=checkpoint).run()
    snapshots = sorted(ckpt_dir.glob("snapshot-*.ckpt"))
    assert len(snapshots) > 1  # genesis + at least one timed snapshot


def test_retention_prunes_old_generations(tmp_path):
    trace = small_trace()
    ckpt_dir = tmp_path / "retention"
    checkpoint = CheckpointConfig(directory=str(ckpt_dir), every_events=10, keep=2)
    build_sim(trace, "jaws2", checkpoint=checkpoint).run()
    snapshots = sorted(ckpt_dir.glob("snapshot-*.ckpt"))
    wals = sorted(ckpt_dir.glob("wal-*.log"))
    assert len(snapshots) == 2
    # Every surviving snapshot keeps its WAL segment, and vice versa.
    assert [p.stem.rpartition("-")[2] for p in snapshots] == [
        p.stem.rpartition("-")[2] for p in wals
    ]


def test_checkpoint_config_validation():
    with pytest.raises(ValueError):
        CheckpointConfig(directory="somewhere")  # directory without a policy
    with pytest.raises(ValueError):
        CheckpointConfig(directory="somewhere", every_events=0)
    with pytest.raises(ValueError):
        CheckpointConfig(directory="somewhere", every_seconds=0.0)
    with pytest.raises(ValueError):
        CheckpointConfig(directory="somewhere", every_events=5, keep=0)
    assert not CheckpointConfig().enabled
    assert CheckpointConfig(directory="d", every_events=5).enabled


# ---------------------------------------------------------------------------
# Refusal paths
# ---------------------------------------------------------------------------
def test_restore_empty_directory_raises(tmp_path):
    with pytest.raises(RecoveryError, match="no snapshots"):
        Simulator.restore(tmp_path)


def test_version_mismatch_raises(tmp_path):
    trace = small_trace()
    ckpt_dir = crash_and_leave_artifacts(tmp_path, trace, "jaws2", crash_at=30)
    latest = sorted(ckpt_dir.glob("snapshot-*.ckpt"))[-1]
    blob = bytearray(latest.read_bytes())
    # Overwrite the u32 format version right after the magic.
    struct.pack_into(">I", blob, len(SNAPSHOT_MAGIC), SNAPSHOT_FORMAT_VERSION + 1)
    latest.write_bytes(bytes(blob))
    with pytest.raises(RecoveryError, match="version mismatch"):
        Simulator.restore(ckpt_dir)


def test_codec_rejects_bad_magic_truncation_and_crc():
    blob = encode_snapshot({"event_index": 0}, {"event_index": 0})
    with pytest.raises(RecoveryError, match="not a JAWS snapshot"):
        decode_snapshot(b"NOTAJAWS" + blob[8:])
    with pytest.raises(RecoveryError, match="truncated"):
        decode_snapshot(blob[:-5])
    corrupt = bytearray(blob)
    corrupt[-1] ^= 0xFF
    with pytest.raises(RecoveryError, match="CRC mismatch"):
        decode_snapshot(bytes(corrupt))
    meta, state = decode_snapshot(blob)
    assert meta == {"event_index": 0} and state == {"event_index": 0}


def test_truncated_wal_raises(tmp_path):
    trace = small_trace()
    ckpt_dir = crash_and_leave_artifacts(tmp_path, trace, "jaws2", crash_at=35)
    wal = sorted(ckpt_dir.glob("wal-*.log"))[-1]
    text = wal.read_text()
    assert text.endswith("\n")
    wal.write_text(text[:-3])  # tear the final record
    with pytest.raises(RecoveryError, match="torn"):
        Simulator.restore(ckpt_dir)


def test_corrupt_wal_crc_raises(tmp_path):
    trace = small_trace()
    ckpt_dir = crash_and_leave_artifacts(tmp_path, trace, "jaws2", crash_at=35)
    wal = sorted(ckpt_dir.glob("wal-*.log"))[-1]
    lines = wal.read_text().splitlines(keepends=True)
    assert lines
    lines[-1] = lines[-1].replace('"k":', '"K":', 1)  # body no longer matches CRC
    wal.write_text("".join(lines))
    with pytest.raises(RecoveryError, match="corrupt WAL"):
        Simulator.restore(ckpt_dir)


def test_wal_index_gap_raises(tmp_path):
    trace = small_trace()
    # Crash mid-segment (not on a snapshot boundary) so the latest WAL
    # holds several records.
    ckpt_dir = crash_and_leave_artifacts(tmp_path, trace, "jaws2", crash_at=38, every_events=5)
    wal = sorted(ckpt_dir.glob("wal-*.log"))[-1]
    lines = wal.read_text().splitlines(keepends=True)
    assert len(lines) >= 2
    del lines[0]
    wal.write_text("".join(lines))
    with pytest.raises(RecoveryError, match="expected event index"):
        Simulator.restore(ckpt_dir)


def test_missing_wal_segment_raises(tmp_path):
    trace = small_trace()
    ckpt_dir = crash_and_leave_artifacts(tmp_path, trace, "jaws2", crash_at=35)
    for wal in ckpt_dir.glob("wal-*.log"):
        wal.unlink()
    with pytest.raises(RecoveryError, match="missing"):
        Simulator.restore(ckpt_dir)


def test_replay_divergence_raises(tmp_path):
    trace = small_trace()
    ckpt_dir = crash_and_leave_artifacts(tmp_path, trace, "jaws2", crash_at=38, every_events=5)
    wal = sorted(ckpt_dir.glob("wal-*.log"))[-1]
    lines = wal.read_text().splitlines()
    assert lines
    # Forge the last record's fingerprint WITH a valid CRC: the file
    # parses cleanly, but the deterministic re-run cannot match it.
    body, _, _ = lines[-1].rpartition("\t")
    fields = json.loads(body)
    fields["f"] = "0" * 16
    forged = format_record(
        WalRecord(
            index=fields["i"], time_hex=fields["t"], kind=fields["k"], fingerprint=fields["f"]
        )
    )
    assert forged.rpartition("\t")[0] == json.dumps(fields, sort_keys=True)
    wal.write_text("\n".join(lines[:-1]) + ("\n" if len(lines) > 1 else "") + forged)
    sim = Simulator.restore(ckpt_dir)  # artifacts are well-formed
    with pytest.raises(RecoveryError, match="diverged"):
        sim.run()


def test_read_wal_missing_file(tmp_path):
    with pytest.raises(RecoveryError, match="missing"):
        read_wal(tmp_path / "wal-000000000.log", 0)


# ---------------------------------------------------------------------------
# Diagnostics satellite: event index + RNG digest on engine errors
# ---------------------------------------------------------------------------
def test_coordinator_crash_carries_diagnostics():
    trace = small_trace()
    sim = build_sim(trace, "jaws2", crash_at=37)
    with pytest.raises(CoordinatorCrash) as info:
        sim.run()
    err = info.value
    assert isinstance(err, SimulationError)
    assert err.event_index == 37
    assert isinstance(err.rng_digest, str) and len(err.rng_digest) == 16
    int(err.rng_digest, 16)  # hex digest
    assert f"event={err.event_index}" in str(err)
    assert f"rng={err.rng_digest}" in str(err)


# ---------------------------------------------------------------------------
# CLI: repro run --checkpoint-dir/--crash-at-event + repro resume
# ---------------------------------------------------------------------------
class TestCliRecovery:
    @pytest.fixture
    def trace_file(self, tmp_path):
        from repro.cli import main

        path = tmp_path / "t.npz"
        assert main(
            ["trace", "generate", "--out", str(path), "--jobs", "12", "--span", "60",
             "--seed", "3"]
        ) == 0
        return path

    def test_run_crash_then_resume(self, trace_file, tmp_path, capsys):
        from repro.cli import main

        ckpt = tmp_path / "cli-ckpt"
        rc = main(
            ["run", "--trace", str(trace_file), "--scheduler", "jaws2",
             "--disk-fault-rate", "0.05", "--checkpoint-dir", str(ckpt),
             "--checkpoint-every-events", "25", "--crash-at-event", "60"]
        )
        captured = capsys.readouterr()
        assert rc == 3
        assert "coordinator crashed" in captured.err
        assert "repro resume" in captured.err
        assert sorted(ckpt.glob("snapshot-*.ckpt"))

        assert main(["resume", "--dir", str(ckpt)]) == 0
        out = capsys.readouterr().out
        assert "resuming from event" in out
        assert "throughput_qps" in out
        assert "availability" in out  # degraded-mode block prints

    def test_resume_without_snapshots_fails(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["resume", "--dir", str(tmp_path / "nothing")]) == 2
        assert "recovery failed" in capsys.readouterr().err

    def test_crash_without_checkpoint_dir_hints(self, trace_file, capsys):
        from repro.cli import main

        rc = main(
            ["run", "--trace", str(trace_file), "--scheduler", "noshare",
             "--crash-at-event", "10"]
        )
        captured = capsys.readouterr()
        assert rc == 3
        assert "cannot be recovered" in captured.err


def test_rng_digest_tracks_stream_position():
    trace = small_trace()
    sim = build_sim(trace, "jaws2")
    before = sim.injector.rng_digest()
    sim.run()
    assert sim.injector.rng_digest() != before
    # Two identical runs end at the same stream position.
    other = build_sim(trace, "jaws2")
    other.run()
    assert other.injector.rng_digest() == sim.injector.rng_digest()
