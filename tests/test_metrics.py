"""Tests for Eq. 1 (workload throughput) and Eq. 2 (aged metric)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CostModel, MetricConfig
from repro.core.metrics import aged_metric, workload_throughput

COST = CostModel(t_b=0.04, t_m=2e-5)


class TestWorkloadThroughput:
    def test_formula_uncached(self):
        w = np.array([100])
        u = workload_throughput(w, np.array([False]), COST)
        assert u[0] == pytest.approx(100 / (0.04 + 2e-5 * 100))

    def test_cached_atom_is_compute_bound(self):
        """phi = 0: the denominator reduces to T_m * W, so U_t = 1/T_m
        for any cached atom with pending work."""
        w = np.array([1, 1000])
        u = workload_throughput(w, np.array([True, True]), COST)
        assert u[0] == pytest.approx(1 / COST.t_m)
        assert u[1] == pytest.approx(1 / COST.t_m)

    def test_cached_beats_uncached(self):
        u = workload_throughput(
            np.array([10_000, 1]), np.array([False, True]), COST
        )
        assert u[1] > u[0]

    def test_monotone_in_queue_size_when_uncached(self):
        w = np.array([1, 10, 100, 1000, 10000])
        u = workload_throughput(w, np.zeros(5, dtype=bool), COST)
        assert (np.diff(u) > 0).all()

    def test_zero_queue_zero_throughput(self):
        u = workload_throughput(np.array([0]), np.array([True]), COST)
        assert u[0] == 0.0

    def test_empty_input(self):
        u = workload_throughput(np.array([]), np.array([], dtype=bool), COST)
        assert len(u) == 0

    @settings(max_examples=50, deadline=None)
    @given(st.integers(1, 10**6), st.booleans())
    def test_bounded_by_compute_rate(self, w, cached):
        u = workload_throughput(np.array([w]), np.array([cached]), COST)
        assert 0 < u[0] <= 1 / COST.t_m + 1e-9


class TestAgedMetric:
    def test_alpha_zero_is_contention_order(self):
        u_t = np.array([1.0, 5.0, 3.0])
        oldest = np.array([0.0, 10.0, 5.0])
        u_e = aged_metric(u_t, oldest, now=20.0, alpha=0.0, config=MetricConfig())
        assert np.argmax(u_e) == 1  # follows U_t

    def test_alpha_one_is_arrival_order(self):
        u_t = np.array([1.0, 5.0, 3.0])
        oldest = np.array([0.0, 10.0, 5.0])
        u_e = aged_metric(u_t, oldest, now=20.0, alpha=1.0, config=MetricConfig())
        assert np.argmax(u_e) == 0  # oldest wins

    def test_normalized_interpolates(self):
        u_t = np.array([0.0, 10.0])
        oldest = np.array([0.0, 10.0])  # atom 0 is older, atom 1 hotter
        cfg = MetricConfig(normalize=True)
        lo = aged_metric(u_t, oldest, 20.0, 0.2, cfg)
        hi = aged_metric(u_t, oldest, 20.0, 0.8, cfg)
        assert np.argmax(lo) == 1
        assert np.argmax(hi) == 0

    def test_raw_formula_units(self):
        cfg = MetricConfig(normalize=False, age_units=1e-3)
        u_t = np.array([100.0])
        oldest = np.array([0.0])
        u_e = aged_metric(u_t, oldest, now=2.0, alpha=0.5, config=cfg)
        # 0.5 * 100 + 0.5 * 2000ms
        assert u_e[0] == pytest.approx(0.5 * 100 + 0.5 * 2000)

    def test_alpha_validated(self):
        with pytest.raises(ValueError):
            aged_metric(np.array([1.0]), np.array([0.0]), 1.0, 1.5, MetricConfig())

    def test_empty_input(self):
        out = aged_metric(np.array([]), np.array([]), 1.0, 0.5, MetricConfig())
        assert len(out) == 0

    def test_constant_inputs_normalize_to_zero(self):
        u_t = np.array([5.0, 5.0])
        oldest = np.array([1.0, 1.0])
        u_e = aged_metric(u_t, oldest, 2.0, 0.5, MetricConfig())
        np.testing.assert_array_equal(u_e, [0.0, 0.0])

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.floats(0, 1e4), min_size=2, max_size=20),
        st.floats(0, 1),
    )
    def test_normalized_range(self, u_t_vals, alpha):
        u_t = np.array(u_t_vals)
        oldest = np.zeros(len(u_t))
        u_e = aged_metric(u_t, oldest, 10.0, alpha, MetricConfig())
        assert (u_e >= -1e-12).all() and (u_e <= 1 + 1e-12).all()
