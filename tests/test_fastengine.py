"""Fast-engine equivalence gate: bit-identity against the exact oracle.

The matrix here (5 schedulers × faults on/off, sanitizer armed) is the
in-repo twin of the ``fastengine-crossval`` CI job: every cell must
produce a bit-identical :class:`RunResult` — equal normalized summary
dicts, ``float.hex``-equal completion times, and an identical
scheduler-decision digest.  Alongside it: the typed
``ConfigurationError`` surface for unsupported combinations, the
``RunSpec``/trace-cache digest separation, and a fuzz-campaign smoke
run on ``engine_kind="fast"``.
"""

import dataclasses

import pytest

from repro.config import (
    CacheConfig,
    CostModel,
    EngineConfig,
    SchedulerConfig,
    ShardConfig,
)
from repro.engine.runner import ENGINE_KINDS, make_scheduler, run_trace
from repro.errors import ConfigurationError
from repro.fastengine import validate_fast_supported
from repro.fastengine.crossval import crossval_faults, crossval_pair
from repro.fuzz.campaign import run_campaign
from repro.fuzz.oracles import normalize_result
from repro.grid.dataset import DatasetSpec
from repro.parallel import RunSpec, run_many
from repro.workload.cache import trace_cache_key
from repro.workload.generator import WorkloadParams, generate_trace

SPEC = DatasetSpec.small(n_timesteps=6, atoms_per_axis=4)

ALL_SCHEDULERS = ("noshare", "liferaft1", "liferaft2", "jaws1", "jaws2")


def small_trace(seed=0, n_jobs=15):
    return generate_trace(SPEC, WorkloadParams(n_jobs=n_jobs, span=120.0, seed=seed))


def engine(sanitize=True):
    """Sanitizer armed: equivalence must hold with invariant checks on."""
    return EngineConfig(
        cost=CostModel(t_b=0.02, t_m=1e-5),
        cache=CacheConfig(capacity_atoms=32),
        run_length=10,
        sanitize=sanitize,
    )


class TestBitIdentity:
    """The tentpole contract: exact and fast runs are indistinguishable."""

    @pytest.mark.parametrize("name", ALL_SCHEDULERS)
    @pytest.mark.parametrize("faulted", (False, True), ids=("clean", "faults"))
    def test_matrix_cell_is_bit_identical(self, name, faulted):
        faults = crossval_faults(seed=3) if faulted else None
        outcome = crossval_pair(small_trace(seed=11), name, engine(), faults=faults)
        assert outcome.match, outcome.divergence
        # The decision digests must agree *and* be non-trivial: an
        # instrumentation bug that hashed nothing would vacuously pass.
        assert outcome.exact_digest == outcome.fast_digest
        assert outcome.n_queries > 0

    @pytest.mark.parametrize("name", ("liferaft2", "jaws2"))
    def test_normalized_result_dicts_equal(self, name):
        trace = small_trace(seed=4)
        exact = run_trace(trace, name, engine())
        fast = run_trace(trace, name, engine(), engine_kind="fast")
        assert normalize_result(exact) == normalize_result(fast)
        exact_hex = [float(t).hex() for t in exact.response_times]
        fast_hex = [float(t).hex() for t in fast.response_times]
        assert exact_hex == fast_hex

    def test_scheduler_config_override_propagates(self):
        config = SchedulerConfig(batch_size=3)
        outcome = crossval_pair(
            small_trace(seed=6), "jaws2", engine(), config=config
        )
        assert outcome.match, outcome.divergence


class TestConfigurationErrors:
    """Unsupported combinations fail loudly with the typed error."""

    def test_unknown_engine_kind(self):
        with pytest.raises(ConfigurationError, match="unknown engine kind"):
            run_trace(small_trace(), "jaws2", engine(), engine_kind="warp")

    def test_prebuilt_scheduler_instance_rejected(self):
        trace = small_trace()
        scheduler = make_scheduler("jaws2", trace, engine())
        with pytest.raises(ConfigurationError, match="factory name"):
            run_trace(trace, scheduler, engine(), engine_kind="fast")

    def test_sharded_rejected(self):
        with pytest.raises(ConfigurationError, match="sharded"):
            validate_fast_supported(engine(), shards=ShardConfig(n_shards=2))

    def test_cluster_rejected(self):
        with pytest.raises(ConfigurationError, match="single-node"):
            validate_fast_supported(engine(), n_nodes=4)

    def test_checkpointing_rejected(self):
        from repro.config import CheckpointConfig

        ckpt = dataclasses.replace(
            engine(),
            checkpoint=CheckpointConfig(directory="ckpt", every_events=100),
        )
        with pytest.raises(ConfigurationError, match="checkpoint"):
            validate_fast_supported(ckpt)

    def test_shardscale_experiment_rejects_fast(self):
        from repro.experiments import shardscale

        with pytest.raises(ConfigurationError, match="sharded"):
            shardscale.run(engine_kind="fast")
        with pytest.raises(ConfigurationError, match="unknown engine kind"):
            shardscale.run(engine_kind="warp")

    def test_campaign_rejects_unknown_kind(self):
        with pytest.raises(ConfigurationError, match="unknown engine kind"):
            run_campaign(seed=1, runs=1, quick=True, engine_kind="warp")


class TestParallelSeam:
    """RunSpec carries the engine kind through digests and the pool."""

    def test_engine_kind_changes_digest(self):
        trace = small_trace()
        exact_spec = RunSpec(trace, "jaws2", engine())
        fast_spec = RunSpec(trace, "jaws2", engine(), engine_kind="fast")
        assert exact_spec.engine_kind == "exact"
        assert exact_spec.digest() != fast_spec.digest()

    def test_run_many_fast_matches_exact(self):
        trace = small_trace(seed=9)
        exact_specs = [RunSpec(trace, n, engine(), label=n) for n in ("noshare", "jaws2")]
        fast_specs = [
            RunSpec(trace, n, engine(), label=n, engine_kind="fast")
            for n in ("noshare", "jaws2")
        ]
        for a, b in zip(run_many(exact_specs), run_many(fast_specs)):
            assert normalize_result(a) == normalize_result(b)

    def test_trace_cache_key_engine_partition(self):
        params = WorkloadParams(n_jobs=5, span=60.0, seed=1)
        default = trace_cache_key(SPEC, params, 1.0)
        assert default == trace_cache_key(SPEC, params, 1.0, engine="")
        assert default != trace_cache_key(SPEC, params, 1.0, engine="fast")


class TestFuzzSmoke:
    """A fast-engine campaign runs clean and matches the exact summary."""

    def test_campaign_summary_matches_exact(self):
        exact = run_campaign(seed=21, runs=2, quick=True)
        fast = run_campaign(seed=21, runs=2, quick=True, engine_kind="fast")
        # Scenario outcomes are engine-independent by the bit-identity
        # contract, so the canonical summaries must be byte-identical.
        assert fast.summary_json() == exact.summary_json()


class TestEngineKindsRegistry:
    def test_registry_contents(self):
        assert ENGINE_KINDS == ("exact", "fast")
