"""Integration tests for the discrete-event engine."""

import numpy as np
import pytest

from repro.config import CacheConfig, CostModel, EngineConfig
from repro.engine.runner import make_scheduler, run_trace
from repro.engine.simulator import Simulator
from repro.grid.dataset import DatasetSpec
from repro.workload.generator import WorkloadParams, generate_trace
from repro.workload.job import Job, JobKind
from repro.workload.query import Query
from repro.workload.trace import Trace

SPEC = DatasetSpec.small(n_timesteps=6, atoms_per_axis=4)


def small_trace(seed=0, n_jobs=15):
    return generate_trace(SPEC, WorkloadParams(n_jobs=n_jobs, span=120.0, seed=seed))


def engine():
    return EngineConfig(
        cost=CostModel(t_b=0.02, t_m=1e-5),
        cache=CacheConfig(capacity_atoms=32),
        run_length=10,
    )


ALL_SCHEDULERS = ("noshare", "liferaft1", "liferaft2", "jaws1", "jaws2")


class TestCompleteness:
    @pytest.mark.parametrize("name", ALL_SCHEDULERS)
    def test_every_query_completes_exactly_once(self, name):
        trace = small_trace()
        result = run_trace(trace, name, engine())
        assert result.n_queries == trace.n_queries
        assert len(result.response_times) == trace.n_queries
        assert result.n_jobs == trace.n_jobs

    @pytest.mark.parametrize("name", ALL_SCHEDULERS)
    def test_no_forced_releases(self, name):
        """A correct gating graph never needs the liveness valve."""
        result = run_trace(small_trace(seed=3), name, engine())
        assert result.forced_releases == 0

    def test_response_times_nonnegative(self):
        result = run_trace(small_trace(seed=1), "jaws2", engine())
        assert (result.response_times >= 0).all()

    def test_job_durations_positive(self):
        result = run_trace(small_trace(seed=2), "liferaft2", engine())
        assert all(d >= 0 for d in result.job_durations.values())
        assert len(result.job_durations) == result.n_jobs


class TestDeterminism:
    @pytest.mark.parametrize("name", ("noshare", "liferaft2", "jaws2"))
    def test_same_trace_same_result(self, name):
        r1 = run_trace(small_trace(seed=5), name, engine())
        r2 = run_trace(small_trace(seed=5), name, engine())
        assert r1.makespan == r2.makespan
        np.testing.assert_array_equal(r1.response_times, r2.response_times)
        assert r1.disk["reads"] == r2.disk["reads"]


class TestOrderingSemantics:
    def ordered_trace(self):
        """One 3-query ordered job with 5s think time."""
        queries = [
            Query(
                query_id=i,
                job_id=0,
                seq=i,
                user_id=0,
                op="velocity",
                timestep=i,
                positions=np.full((4, 3), 32.0 + i),
            )
            for i in range(3)
        ]
        job = Job(0, JobKind.ORDERED, 0, 0.0, 5.0, queries)
        return Trace(SPEC, [job])

    def test_think_time_separates_ordered_queries(self):
        result = run_trace(self.ordered_trace(), "liferaft2", engine())
        # Each query's completion precedes the next arrival by >= 5s,
        # so the job spans at least 2 think times plus service.
        assert result.job_durations[0] >= 10.0

    def test_batched_job_queries_arrive_together(self):
        queries = [
            Query(
                query_id=i,
                job_id=0,
                seq=i,
                user_id=0,
                op="stats",
                timestep=0,
                positions=np.full((4, 3), 40.0 + i * 64),
            )
            for i in range(3)
        ]
        job = Job(0, JobKind.BATCHED, 0, 0.0, 9.0, queries)
        result = run_trace(Trace(SPEC, [job]), "liferaft2", engine())
        # No think-time serialization: total well under 3 x 9s.
        assert result.job_durations[0] < 9.0


class TestCostAccounting:
    def test_disk_seconds_match_reads(self):
        eng = engine()
        result = run_trace(small_trace(seed=7), "noshare", eng)
        assert result.disk["seconds"] == pytest.approx(
            result.disk["reads"] * eng.cost.t_b
        )

    def test_busy_time_at_least_compute(self):
        eng = engine()
        result = run_trace(small_trace(seed=7), "liferaft2", eng)
        lower = result.exec["positions"] * eng.cost.t_m
        assert result.exec["busy_seconds"] >= lower

    def test_makespan_at_least_busy_time_single_node(self):
        result = run_trace(small_trace(seed=7), "liferaft2", engine())
        assert result.makespan >= result.exec["busy_seconds"] - 1e-9

    def test_cache_capacity_never_exceeded(self):
        eng = engine()
        trace = small_trace(seed=8)
        sched = make_scheduler("jaws2", trace, eng)
        sim = Simulator(trace, [sched], eng)
        sim.run()
        assert len(sim.nodes[0].cache) <= eng.cache.capacity_atoms


class TestRunBoundaries:
    def test_runs_emitted_every_r_completions(self):
        eng = engine()
        trace = small_trace(seed=9, n_jobs=20)
        result = run_trace(trace, "jaws2", eng)
        assert len(result.runs) == trace.n_queries // eng.run_length

    def test_adaptive_alpha_history_matches_runs(self):
        eng = engine()
        result = run_trace(small_trace(seed=9, n_jobs=20), "jaws2", eng)
        assert len(result.alpha_history) == len(result.runs)


class TestGuards:
    def test_max_sim_time_enforced(self):
        eng = EngineConfig(
            cost=CostModel(t_b=0.02, t_m=1e-5),
            cache=CacheConfig(capacity_atoms=32),
            max_sim_time=1.0,
        )
        with pytest.raises(RuntimeError, match="max_sim_time"):
            run_trace(small_trace(seed=1), "noshare", eng)

    def test_unknown_scheduler_name(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            run_trace(small_trace(), "belady", engine())

    def test_needs_at_least_one_scheduler(self):
        with pytest.raises(ValueError):
            Simulator(small_trace(), [], engine())


class TestSharingActuallyHappens:
    def test_liferaft_reads_fewer_atoms_than_noshare(self):
        trace = small_trace(seed=11, n_jobs=25)
        eng = engine()
        no = run_trace(trace, "noshare", eng)
        lr = run_trace(trace, "liferaft2", eng)
        assert lr.disk["reads"] < no.disk["reads"]

    def test_jaws2_fewer_reads_than_liferaft(self):
        trace = generate_trace(
            SPEC,
            WorkloadParams(
                n_jobs=25, span=120.0, campaign_prob=0.6, think_time_mean=1.0, seed=12
            ),
        )
        eng = engine()
        lr = run_trace(trace, "liferaft2", eng)
        jw = run_trace(trace, "jaws2", eng)
        assert jw.disk["reads"] <= lr.disk["reads"]
