"""Tests for queries, jobs, the generator and trace serialization."""

import numpy as np
import pytest

from repro.grid.atoms import AtomMapper
from repro.grid.dataset import DatasetSpec
from repro.workload.generator import WorkloadParams, _timestep_popularity, generate_trace
from repro.workload.job import Job, JobKind
from repro.workload.query import Query, preprocess_query
from repro.workload.stats import (
    estimate_job_durations,
    job_duration_histogram,
    queries_per_timestep,
    workload_summary,
)
from repro.workload.trace import Trace

SPEC = DatasetSpec.small(n_timesteps=16, atoms_per_axis=4)


class TestQueryValidation:
    def test_bad_op(self):
        with pytest.raises(ValueError):
            Query(0, 0, 0, 0, "join", 0, np.zeros((1, 3)))

    def test_bad_shape(self):
        with pytest.raises(ValueError):
            Query(0, 0, 0, 0, "velocity", 0, np.zeros((3,)))

    def test_empty_positions(self):
        with pytest.raises(ValueError):
            Query(0, 0, 0, 0, "velocity", 0, np.zeros((0, 3)))

    def test_atoms_cached(self):
        q = Query(0, 0, 0, 0, "velocity", 2, np.full((5, 3), 33.0))
        atoms = q.atoms(SPEC)
        assert q.atom_set is atoms
        assert len(atoms) == 1


class TestPreprocess:
    def test_subqueries_partition_positions(self):
        rng = np.random.default_rng(0)
        q = Query(0, 0, 0, 0, "velocity", 1, rng.uniform(0, SPEC.grid_side, (200, 3)))
        subs = preprocess_query(q, AtomMapper(SPEC))
        assert sum(sq.n_positions for sq in subs) == 200
        assert q.atom_set == frozenset(sq.atom_id for sq in subs)
        ids = [sq.atom_id for sq in subs]
        assert ids == sorted(ids)  # Morton order


class TestJobValidation:
    def make_queries(self, n, job_id=0):
        return [
            Query(i, job_id, i, 0, "velocity", 0, np.full((2, 3), 10.0)) for i in range(n)
        ]

    def test_seq_must_be_contiguous(self):
        queries = self.make_queries(2)
        queries[1].seq = 5
        with pytest.raises(ValueError):
            Job(0, JobKind.ORDERED, 0, 0.0, 1.0, queries)

    def test_job_id_consistency(self):
        queries = self.make_queries(2, job_id=9)
        with pytest.raises(ValueError):
            Job(0, JobKind.ORDERED, 0, 0.0, 1.0, queries)

    def test_negative_times(self):
        with pytest.raises(ValueError):
            Job(0, JobKind.ORDERED, 0, -1.0, 1.0, self.make_queries(1))

    def test_timesteps_property(self):
        queries = self.make_queries(3)
        for i, q in enumerate(queries):
            q.timestep = i % 2
        job = Job(0, JobKind.ORDERED, 0, 0.0, 1.0, queries)
        assert job.timesteps == {0, 1}


class TestGeneratorCalibration:
    """The synthetic trace must match the paper's §VI-A characterization."""

    @pytest.fixture(scope="class")
    def trace(self):
        return generate_trace(SPEC, WorkloadParams(n_jobs=300, span=6000.0, seed=11))

    def test_deterministic(self):
        t1 = generate_trace(SPEC, WorkloadParams(n_jobs=40, span=500.0, seed=4))
        t2 = generate_trace(SPEC, WorkloadParams(n_jobs=40, span=500.0, seed=4))
        assert t1.n_queries == t2.n_queries
        for ja, jb in zip(t1.jobs, t2.jobs):
            assert ja.submit_time == jb.submit_time
            for qa, qb in zip(ja.queries, jb.queries):
                np.testing.assert_array_equal(qa.positions, qb.positions)

    def test_most_queries_belong_to_jobs(self, trace):
        """Paper: over 95% of queries belong to (multi-query) jobs."""
        s = workload_summary(trace)
        assert s["frac_queries_in_jobs"] > 0.9

    def test_most_jobs_single_timestep(self, trace):
        """Paper: 88% of jobs access only a single time step."""
        s = workload_summary(trace)
        assert 0.7 <= s["frac_jobs_single_timestep"] <= 0.97

    def test_timestep_popularity_clustered_at_ends(self, trace):
        """Paper Fig. 9: popularity clusters at start/end of sim time."""
        counts = queries_per_timestep(trace)
        n = SPEC.n_timesteps
        edge = counts[: n // 4].sum() + counts[-n // 4 :].sum()
        assert edge > counts.sum() * 0.4

    def test_downward_trend(self, trace):
        counts = queries_per_timestep(trace)
        half = SPEC.n_timesteps // 2
        assert counts[1:half].sum() > counts[half:-1].sum()

    def test_ordered_jobs_advance_monotonically(self, trace):
        for job in trace.jobs:
            job.validate_ordered_chain()

    def test_submit_times_sorted_within_span(self, trace):
        times = [j.submit_time for j in trace.jobs]
        assert times == sorted(times)
        assert all(t >= 0 for t in times)

    def test_popularity_shape_helper(self):
        w = _timestep_popularity(31)
        assert w.sum() == pytest.approx(1.0)
        assert w[0] > w[15]  # start cluster
        assert w[30] > w[15]  # end cluster

    def test_mix_validation(self):
        with pytest.raises(ValueError):
            WorkloadParams(frac_tracking=0.8, frac_batched=0.4)
        with pytest.raises(ValueError):
            WorkloadParams(n_jobs=0)
        with pytest.raises(ValueError):
            WorkloadParams(burstiness=2.0)


class TestTrace:
    def make(self, seed=0):
        return generate_trace(SPEC, WorkloadParams(n_jobs=25, span=300.0, seed=seed))

    def test_rescale_compresses_gaps(self):
        trace = self.make()
        fast = trace.rescale(2.0)
        assert fast.span == pytest.approx(trace.span / 2.0)
        assert fast.n_queries == trace.n_queries
        # Think times untouched.
        for a, b in zip(trace.jobs, fast.jobs):
            assert a.think_time == b.think_time

    def test_rescale_validation(self):
        with pytest.raises(ValueError):
            self.make().rescale(0.0)

    def test_rescale_preserves_order(self):
        fast = self.make().rescale(4.0)
        times = [j.submit_time for j in fast.jobs]
        assert times == sorted(times)

    def test_save_load_roundtrip(self, tmp_path):
        trace = self.make(seed=3)
        path = tmp_path / "trace.npz"
        trace.save(path)
        loaded = Trace.load(path)
        assert loaded.spec == trace.spec
        assert loaded.n_jobs == trace.n_jobs
        assert loaded.n_queries == trace.n_queries
        for ja, jb in zip(trace.jobs, loaded.jobs):
            assert ja.job_id == jb.job_id
            assert ja.kind == jb.kind
            assert ja.submit_time == pytest.approx(jb.submit_time)
            for qa, qb in zip(ja.queries, jb.queries):
                np.testing.assert_allclose(qa.positions, qb.positions)
                assert qa.timestep == qb.timestep

    def test_duplicate_job_ids_rejected(self):
        trace = self.make()
        with pytest.raises(ValueError):
            Trace(trace.spec, trace.jobs + [trace.jobs[0]])


class TestStats:
    def test_duration_histogram_buckets(self):
        durations = {0: 30.0, 1: 120.0, 2: 2000.0, 3: 10000.0}
        h = job_duration_histogram(durations)
        assert h["<1min"] == pytest.approx(0.25)
        assert h["1-30min"] == pytest.approx(0.25)
        assert h["30min-2h"] == pytest.approx(0.25)
        assert h[">2h"] == pytest.approx(0.25)

    def test_empty_histogram(self):
        h = job_duration_histogram({})
        assert all(v == 0.0 for v in h.values())

    def test_estimates_scale_with_job_length(self):
        trace = generate_trace(SPEC, WorkloadParams(n_jobs=30, span=300.0, seed=1))
        est = estimate_job_durations(trace, exec_time_estimate=1.0)
        for job in trace.jobs:
            assert est[job.job_id] >= job.n_queries * 1.0
