"""Tests for the multi-node cluster substrate."""

import pytest

from repro.cluster.cluster import run_cluster
from repro.cluster.partition import MortonRangePartitioner
from repro.config import CacheConfig, CostModel, EngineConfig
from repro.grid.dataset import DatasetSpec
from repro.workload.generator import WorkloadParams, generate_trace

SPEC = DatasetSpec.small(n_timesteps=6, atoms_per_axis=4)


def engine():
    return EngineConfig(
        cost=CostModel(t_b=0.02, t_m=1e-5), cache=CacheConfig(capacity_atoms=32)
    )


def small_trace(seed=0):
    return generate_trace(SPEC, WorkloadParams(n_jobs=20, span=150.0, seed=seed))


class TestPartitioner:
    def test_covers_all_atoms_disjointly(self):
        part = MortonRangePartitioner(SPEC, 4)
        owned = [set(part.atoms_of_node(n)) for n in range(4)]
        union = set().union(*owned)
        assert union == set(range(SPEC.atoms_per_timestep))
        assert sum(len(o) for o in owned) == SPEC.atoms_per_timestep

    def test_node_of_matches_ranges(self):
        part = MortonRangePartitioner(SPEC, 3)
        for node in range(3):
            for morton in part.atoms_of_node(node):
                for ts in range(SPEC.n_timesteps):
                    atom_id = SPEC.atom_id(ts, morton)
                    assert part.node_of(atom_id) == node

    def test_contiguous_ranges(self):
        part = MortonRangePartitioner(SPEC, 4)
        for node in range(4):
            r = part.atoms_of_node(node)
            assert list(r) == list(range(r.start, r.stop))

    def test_validation(self):
        with pytest.raises(ValueError):
            MortonRangePartitioner(SPEC, 0)
        with pytest.raises(ValueError):
            MortonRangePartitioner(SPEC, SPEC.atoms_per_timestep + 1)


class TestClusterRuns:
    @pytest.mark.parametrize("n_nodes", [1, 2, 4])
    def test_all_queries_complete(self, n_nodes):
        trace = small_trace(seed=1)
        out = run_cluster(trace, "jaws2", n_nodes, engine())
        assert out.result.n_queries == trace.n_queries
        assert out.result.forced_releases == 0

    def test_single_node_matches_run_trace(self):
        from repro.engine.runner import run_trace

        trace = small_trace(seed=2)
        single = run_trace(trace, "liferaft2", engine())
        cluster = run_cluster(trace, "liferaft2", 1, engine())
        assert cluster.result.makespan == pytest.approx(single.makespan)
        assert cluster.result.disk["reads"] == single.disk["reads"]

    def test_more_nodes_not_slower(self):
        """With parallel executors, makespan should not grow (the trace
        is serial-server-bound at one node)."""
        trace = small_trace(seed=3).rescale(8.0)
        eng = engine()
        one = run_cluster(trace, "liferaft2", 1, eng)
        four = run_cluster(trace, "liferaft2", 4, eng)
        assert four.result.makespan <= one.result.makespan * 1.1

    def test_load_diagnostics(self):
        out = run_cluster(small_trace(seed=4), "jaws2", 4, engine())
        assert len(out.node_atoms_executed) == 4
        assert sum(out.node_atoms_executed) == out.result.exec["atoms_executed"]
        assert out.load_imbalance >= 1.0


class TestMultiNodeGating:
    def test_single_node_query_does_not_stall_remote_gating(self):
        """A gated ordered job whose query routes entirely to one node
        must not leave the other nodes' gating groups waiting forever
        (arrivals are broadcast to every node)."""
        import numpy as np

        from repro.workload.job import Job, JobKind
        from repro.workload.query import Query
        from repro.workload.trace import Trace

        spec = SPEC

        def pos(ax):
            # All positions inside atom column ax (keeps the query on
            # one node under a 2-node Morton-range partition).
            return np.full((6, 3), 64.0 * ax + 20.0)

        def job(jid, user, axes):
            queries = [
                Query(jid * 10 + i, jid, i, user, "velocity", i, pos(ax))
                for i, ax in enumerate(axes)
            ]
            return Job(jid, JobKind.ORDERED, user, 0.0, 0.5, queries)

        # Two identical 2-query jobs -> gating aligns them; the first
        # query lives on the low-Morton node, the second on the high one.
        trace = Trace(spec, [job(0, 0, [0, 3]), job(1, 1, [0, 3])])
        out = run_cluster(trace, "jaws2", 2, engine())
        assert out.result.n_queries == 4
        assert out.result.forced_releases == 0
