"""Unit and property tests for the Morton codec."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.morton.codec import (
    MAX_COORD_BITS,
    morton_decode,
    morton_decode_scalar,
    morton_encode,
    morton_encode_scalar,
)

COORD = st.integers(min_value=0, max_value=(1 << MAX_COORD_BITS) - 1)


class TestKnownValues:
    def test_origin(self):
        assert morton_encode_scalar(0, 0, 0) == 0

    def test_unit_axes(self):
        # Bit order: x at bit 0, y at bit 1, z at bit 2.
        assert morton_encode_scalar(1, 0, 0) == 0b001
        assert morton_encode_scalar(0, 1, 0) == 0b010
        assert morton_encode_scalar(0, 0, 1) == 0b100

    def test_second_bits(self):
        assert morton_encode_scalar(2, 0, 0) == 0b001000
        assert morton_encode_scalar(0, 2, 0) == 0b010000
        assert morton_encode_scalar(0, 0, 2) == 0b100000

    def test_combined(self):
        # (3, 1, 0): x bits at 0 and 3, y bit at 1.
        assert morton_encode_scalar(3, 1, 0) == 0b001011

    def test_octant_structure(self):
        # The first 8 codes enumerate the 2x2x2 octant corners.
        seen = set()
        for code in range(8):
            x, y, z = morton_decode_scalar(code)
            assert 0 <= x <= 1 and 0 <= y <= 1 and 0 <= z <= 1
            seen.add((x, y, z))
        assert len(seen) == 8

    def test_max_coordinate_roundtrip(self):
        m = (1 << MAX_COORD_BITS) - 1
        assert morton_decode_scalar(morton_encode_scalar(m, m, m)) == (m, m, m)


class TestVectorized:
    def test_array_roundtrip(self):
        rng = np.random.default_rng(0)
        x = rng.integers(0, 1 << MAX_COORD_BITS, 1000)
        y = rng.integers(0, 1 << MAX_COORD_BITS, 1000)
        z = rng.integers(0, 1 << MAX_COORD_BITS, 1000)
        dx, dy, dz = morton_decode(morton_encode(x, y, z))
        np.testing.assert_array_equal(dx, x.astype(np.uint64))
        np.testing.assert_array_equal(dy, y.astype(np.uint64))
        np.testing.assert_array_equal(dz, z.astype(np.uint64))

    def test_dtype_is_uint64(self):
        assert morton_encode(np.array([1]), np.array([2]), np.array([3])).dtype == np.uint64

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            morton_encode(np.array([-1]), np.array([0]), np.array([0]))

    def test_too_large_rejected(self):
        big = np.array([1 << MAX_COORD_BITS])
        with pytest.raises(ValueError):
            morton_encode(big, np.array([0]), np.array([0]))


class TestProperties:
    @given(COORD, COORD, COORD)
    def test_roundtrip(self, x, y, z):
        assert morton_decode_scalar(morton_encode_scalar(x, y, z)) == (x, y, z)

    @given(COORD, COORD, COORD)
    def test_injective_vs_manual_interleave(self, x, y, z):
        code = morton_encode_scalar(x, y, z)
        manual = 0
        for bit in range(MAX_COORD_BITS):
            manual |= ((x >> bit) & 1) << (3 * bit)
            manual |= ((y >> bit) & 1) << (3 * bit + 1)
            manual |= ((z >> bit) & 1) << (3 * bit + 2)
        assert code == manual

    @given(st.integers(min_value=0, max_value=(1 << 20) - 1))
    def test_locality_within_cube(self, corner_code):
        """All codes of an aligned 2x2x2 cube share their high bits."""
        base = corner_code << 3
        coords = [morton_decode_scalar(base + i) for i in range(8)]
        xs, ys, zs = zip(*coords)
        assert max(xs) - min(xs) == 1
        assert max(ys) - min(ys) == 1
        assert max(zs) - min(zs) == 1

    @given(COORD, COORD)
    def test_monotone_along_x_within_cell(self, y, z):
        a = morton_encode_scalar(0, y, z)
        b = morton_encode_scalar(1, y, z)
        assert b == a + 1
