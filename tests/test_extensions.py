"""Tests for the §VII future-work extensions: QoS deadlines,
trajectory prefetching, and job encapsulation."""

import numpy as np
import pytest

from repro.config import CacheConfig, CostModel, EngineConfig, SchedulerConfig
from repro.core.prefetch import PrefetchingJAWSScheduler, TrajectoryPredictor
from repro.core.qos import QoSJAWSScheduler
from repro.engine.runner import run_trace
from repro.grid.dataset import DatasetSpec
from repro.workload.encapsulated import encapsulate_trace
from repro.workload.generator import WorkloadParams, generate_trace
from repro.workload.query import Query

SPEC = DatasetSpec.small(n_timesteps=8, atoms_per_axis=4)
COST = CostModel(t_b=0.02, t_m=1e-5)


def engine():
    return EngineConfig(cost=COST, cache=CacheConfig(capacity_atoms=32), run_length=20)


def tracking_heavy_trace(seed=0, n_jobs=25):
    return generate_trace(
        SPEC,
        WorkloadParams(
            n_jobs=n_jobs,
            span=200.0,
            frac_tracking=0.5,
            frac_batched=0.2,
            think_time_mean=3.0,
            seed=seed,
        ),
    )


def cfg(**kw):
    base = dict(alpha=0.0, adaptive_alpha=False, batch_size=8, job_aware=True)
    base.update(kw)
    return SchedulerConfig(**base)


class TestQoSScheduler:
    def test_validation(self):
        with pytest.raises(ValueError):
            QoSJAWSScheduler(SPEC, COST, cfg(), slack_factor=0)
        with pytest.raises(ValueError):
            QoSJAWSScheduler(SPEC, COST, cfg(), lookahead=-1)

    def test_all_queries_complete(self):
        trace = tracking_heavy_trace(seed=1)
        s = QoSJAWSScheduler(SPEC, COST, cfg())
        result = run_trace(trace, s, engine())
        assert result.n_queries == trace.n_queries
        assert s.completed == trace.n_queries

    def test_deadlines_proportional_to_size(self):
        s = QoSJAWSScheduler(SPEC, COST, cfg(), slack_factor=10.0)
        small = Query(0, 0, 0, 0, "velocity", 0, np.full((5, 3), 32.0))
        big = Query(1, 1, 0, 0, "velocity", 0, np.full((500, 3), 100.0))
        from repro.grid.atoms import AtomMapper
        from repro.workload.query import preprocess_query

        mapper = AtomMapper(SPEC)
        s.on_query_arrival(small, preprocess_query(small, mapper), 0.0)
        s.on_query_arrival(big, preprocess_query(big, mapper), 0.0)
        assert s._deadline[0] < s._deadline[1]

    def test_tight_slack_reduces_tardiness(self):
        """QoS scheduling reduces miss rate / tardiness vs plain JAWS
        (same deadline bookkeeping, urgency disabled via huge lookahead
        exclusion)."""
        trace = tracking_heavy_trace(seed=2, n_jobs=35).rescale(6.0)
        slack = 40.0
        qos = QoSJAWSScheduler(SPEC, COST, cfg(), slack_factor=slack, lookahead=10.0)
        run_trace(trace, qos, engine())
        # Plain JAWS with the same deadlines but no urgency override:
        baseline = QoSJAWSScheduler(SPEC, COST, cfg(), slack_factor=slack, lookahead=0.0)
        baseline.next_batch = lambda now, _s=baseline: super(
            QoSJAWSScheduler, _s
        ).next_batch(now)
        run_trace(trace, baseline, engine())
        assert qos.mean_tardiness <= baseline.mean_tardiness * 1.05

    def test_urgent_atom_scheduled_first(self):
        s = QoSJAWSScheduler(SPEC, COST, cfg(), slack_factor=0.001, lookahead=100.0)
        from repro.grid.atoms import AtomMapper
        from repro.workload.query import preprocess_query

        mapper = AtomMapper(SPEC)
        urgent = Query(0, 0, 0, 0, "velocity", 0, np.full((3, 3), 32.0))
        hot = Query(1, 1, 0, 0, "velocity", 1, np.full((900, 3), 100.0))
        s.on_query_arrival(hot, preprocess_query(hot, mapper), 0.0)
        s.on_query_arrival(urgent, preprocess_query(urgent, mapper), 0.0)
        batch = s.next_batch(50.0)
        owners = {sq.query.query_id for _, subs in batch.atoms for sq in subs}
        assert 0 in owners  # the near-deadline query won over the hot atom


class TestTrajectoryPredictor:
    def test_needs_two_observations(self):
        p = TrajectoryPredictor(SPEC)
        q = Query(0, 7, 0, 0, "interp", 0, np.full((4, 3), 32.0))
        p.observe(q)
        assert p.predict_atoms(7) == []

    def test_predicts_translated_box(self):
        p = TrajectoryPredictor(SPEC)
        q0 = Query(0, 7, 0, 0, "interp", 0, np.full((4, 3), 10.0))
        q1 = Query(1, 7, 1, 0, "interp", 1, np.full((4, 3), 74.0))  # +64/step
        p.observe(q0)
        p.observe(q1)
        atoms = p.predict_atoms(7)
        # Next box around 138 -> atom coord 2 on each axis, timestep 2.
        expected_morton = int(
            SPEC.morton_index().encode(np.array([2]), np.array([2]), np.array([2]))[0]
        )
        assert SPEC.atom_id(2, expected_morton) in atoms

    def test_no_prediction_past_last_timestep(self):
        p = TrajectoryPredictor(SPEC)
        q0 = Query(0, 7, 0, 0, "interp", SPEC.n_timesteps - 2, np.full((4, 3), 10.0))
        q1 = Query(1, 7, 1, 0, "interp", SPEC.n_timesteps - 1, np.full((4, 3), 12.0))
        p.observe(q0)
        p.observe(q1)
        assert p.predict_atoms(7) == []

    def test_forget(self):
        p = TrajectoryPredictor(SPEC)
        q = Query(0, 7, 0, 0, "interp", 0, np.full((4, 3), 32.0))
        p.observe(q)
        p.forget(7)
        assert p.predict_atoms(7) == []


class TestPrefetchingScheduler:
    def test_all_queries_complete_and_prediction_tracked(self):
        trace = tracking_heavy_trace(seed=3)
        s = PrefetchingJAWSScheduler(SPEC, COST, cfg())
        result = run_trace(trace, s, engine())
        assert result.n_queries == trace.n_queries
        assert s.prefetched_atoms > 0
        assert 0.0 <= s.prediction_accuracy <= 1.0

    def test_prediction_accuracy_reasonable(self):
        """Tracking clouds drift slowly, so box extrapolation should
        recover most touched atoms."""
        trace = tracking_heavy_trace(seed=4, n_jobs=30)
        s = PrefetchingJAWSScheduler(SPEC, COST, cfg())
        run_trace(trace, s, engine())
        assert s.prediction_accuracy > 0.5

    def test_prefetch_improves_hit_ratio_with_think_time(self):
        trace = tracking_heavy_trace(seed=5, n_jobs=30)
        eng = engine()
        plain = run_trace(trace, "jaws2", eng)
        s = PrefetchingJAWSScheduler(SPEC, COST, cfg())
        fetched = run_trace(trace, s, eng)
        # Prefetch converts think-time idleness into warm cache: the
        # queries themselves see fewer cold misses.
        assert fetched.mean_response_time <= plain.mean_response_time * 1.05

    def test_validation(self):
        with pytest.raises(ValueError):
            PrefetchingJAWSScheduler(SPEC, COST, cfg(), max_prefetch_atoms=0)


class TestEncapsulation:
    def test_think_time_zeroed_for_ordered_only(self):
        trace = tracking_heavy_trace(seed=6)
        enc = encapsulate_trace(trace)
        for before, after in zip(trace.jobs, enc.jobs):
            if before.is_ordered:
                assert after.think_time == 0.0
            else:
                assert after.think_time == before.think_time
            assert after.n_queries == before.n_queries

    def test_encapsulation_speeds_up_jobs(self):
        """Removing client round-trips shrinks ordered jobs' wall time
        (the workload here is not server-bound, so makespan is set by
        the arrival span — job durations are the right measure)."""
        trace = tracking_heavy_trace(seed=7, n_jobs=20)
        eng = engine()
        loop = run_trace(trace, "jaws2", eng)
        enc = run_trace(encapsulate_trace(trace), "jaws2", eng)
        ordered = [j.job_id for j in trace.jobs if j.is_ordered and j.n_queries > 1]
        loop_total = sum(loop.job_durations[j] for j in ordered)
        enc_total = sum(enc.job_durations[j] for j in ordered)
        assert enc_total < loop_total
        # Note: encapsulation can *increase* I/O — zero think time
        # shrinks the window in which other queries join an atom's
        # queue, trading sharing for latency (the §VII "expense of
        # generality" in another guise); the encapsulation bench
        # quantifies this, so no read-count assertion here.
