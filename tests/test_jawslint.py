"""The jawslint rule corpus: each determinism rule fires on the bad
snippets (exact rule id and line), stays silent on the good ones,
honors inline suppressions, and keeps ``src/repro`` clean at HEAD.
"""

import textwrap
from pathlib import Path

import pytest

from repro.analysis.lint import RULES, lint_file, lint_paths, lint_source, main

REPO_ROOT = Path(__file__).resolve().parent.parent


def violations(code):
    return lint_source(textwrap.dedent(code), path="<snippet>")


def hits(code):
    """``[(rule, line), …]`` for a snippet."""
    return [(v.rule, v.line) for v in violations(code)]


# ---------------------------------------------------------------------------
# Bad corpus: every snippet must produce exactly the expected findings.
# ---------------------------------------------------------------------------
BAD = [
    # D001: wall-clock reads
    ("import time\nt = time.time()\n", [("D001", 2)]),
    ("import time\nt = time.perf_counter()\n", [("D001", 2)]),
    ("import time as walltime\nt = walltime.monotonic_ns()\n", [("D001", 2)]),
    ("from time import perf_counter\nt = perf_counter()\n", [("D001", 2)]),
    ("import datetime\nd = datetime.datetime.now()\n", [("D001", 2)]),
    ("from datetime import datetime\nd = datetime.utcnow()\n", [("D001", 2)]),
    # D002: unseeded randomness
    ("import random\nx = random.random()\n", [("D002", 2)]),
    ("import random\nrandom.shuffle(items)\n", [("D002", 2)]),
    ("from random import choice\nx = choice(items)\n", [("D002", 2)]),
    ("import numpy as np\nx = np.random.rand(3)\n", [("D002", 2)]),
    ("import numpy\nx = numpy.random.randint(0, 5)\n", [("D002", 2)]),
    # D003: unordered iteration feeding an ordering decision
    ("for x in {1, 2, 3}:\n    schedule(x)\n", [("D003", 1)]),
    ("for x in {a for a in items}:\n    schedule(x)\n", [("D003", 1)]),
    ("for x in set(items):\n    schedule(x)\n", [("D003", 1)]),
    ("for k in mapping.keys():\n    schedule(k)\n", [("D003", 1)]),
    ("order = [f(x) for x in frozenset(items)]\n", [("D003", 1)]),
    (
        "best = max(pool.items(), key=lambda kv: kv[1])\n",
        [("D003", 1)],
    ),
    (
        "worst = min(scores.values(), key=lambda v: v.cost)\n",
        [("D003", 1)],
    ),
    # D004: mutable default arguments
    ("def f(items=[]):\n    return items\n", [("D004", 1)]),
    ("def f(cfg={}):\n    return cfg\n", [("D004", 1)]),
    ("def f(seen=set()):\n    return seen\n", [("D004", 1)]),
    ("def f(*, tail=[1]):\n    return tail\n", [("D004", 1)]),
    ("async def f(items=[]):\n    return items\n", [("D004", 1)]),
    # D005: float equality against the virtual clock
    ("if clock == deadline:\n    fire()\n", [("D005", 1)]),
    ("if now != t_end:\n    wait()\n", [("D005", 1)]),
    ("done = sim_time == horizon\n", [("D005", 1)]),
    ("if self.virtual_clock == 0.5:\n    tick()\n", [("D005", 1)]),
]


@pytest.mark.parametrize("code,expected", BAD, ids=[e[0][0] + f"-{i}" for i, e in enumerate(BAD)])
def test_bad_snippets_flagged(code, expected):
    assert hits(code) == expected


# ---------------------------------------------------------------------------
# Good corpus: none of these may fire.
# ---------------------------------------------------------------------------
GOOD = [
    # Seeded randomness is the sanctioned pattern.
    "import random\nrng = random.Random(42)\nx = rng.random()\n",
    "import numpy as np\nrng = np.random.default_rng(7)\nx = rng.integers(0, 5)\n",
    "import numpy as np\ng = np.random.Generator(np.random.PCG64(3))\n",
    # Virtual time lives on the event heap, not the wall clock.
    "def advance(self, dt):\n    self.clock += dt\n",
    # Sorted set iteration is fine.
    "for x in sorted({1, 2, 3}):\n    schedule(x)\n",
    "for x in sorted(set(items)):\n    schedule(x)\n",
    # Membership tests and set algebra are not iteration.
    "present = x in {1, 2, 3}\n",
    "extra = set(a) - set(b)\n",
    # dict iteration is insertion-ordered in Python — allowed.
    "for k in mapping:\n    schedule(k)\n",
    "for k, v in mapping.items():\n    schedule(k)\n",
    # max with a total-order (tuple) tiebreak key.
    "best = max(pool.items(), key=lambda kv: (kv[1], -kv[0]))\n",
    # Immutable defaults.
    "def f(x=0, name='a', tail=(1, 2), flag=None):\n    return x\n",
    # Inequalities against the clock are meaningful; equality is not.
    "if clock >= deadline:\n    fire()\n",
    "if now < t_end:\n    wait()\n",
    # Unrelated float equality is outside D005's scope.
    "if weight == 1.0:\n    pass\n",
    # A local function named time() is not the stdlib wall clock.
    "def time():\n    return 0\nt = time()\n",
]


@pytest.mark.parametrize("code", GOOD, ids=[f"good-{i}" for i in range(len(GOOD))])
def test_good_snippets_clean(code):
    assert hits(code) == []


# ---------------------------------------------------------------------------
# D006: parallel-worker purity (path-scoped to parallel packages)
# ---------------------------------------------------------------------------
PARALLEL_PATH = "src/repro/parallel/pool.py"


def parallel_hits(code):
    return [
        (v.rule, v.line)
        for v in lint_source(textwrap.dedent(code), path=PARALLEL_PATH)
    ]


def test_d006_flags_process_identity_in_parallel_scope():
    code = "import os\npid = os.getpid()\n"
    assert parallel_hits(code) == [("D006", 2)]


def test_d006_flags_thread_identity_in_parallel_scope():
    code = "import threading\ni = threading.get_ident()\n"
    assert parallel_hits(code) == [("D006", 2)]


def test_d006_flags_current_process_via_from_import():
    code = (
        "from multiprocessing import current_process\n"
        "name = current_process().name\n"
    )
    assert parallel_hits(code) == [("D006", 2)]


def test_d006_wall_clock_flagged_on_top_of_d001():
    code = "import time\nt = time.perf_counter()\n"
    assert parallel_hits(code) == [("D001", 2), ("D006", 2)]


def test_d006_silent_outside_parallel_packages():
    code = "import os\npid = os.getpid()\n"
    assert hits(code) == []
    assert [
        (v.rule, v.line)
        for v in lint_source(code, path="src/repro/engine/runner.py")
    ] == []


def test_d006_inline_suppression():
    code = "import os\npid = os.getpid()  # jawslint: disable=D006 - log tag only\n"
    assert parallel_hits(code) == []


def test_d006_suppression_is_rule_specific():
    # Hiding D001 still leaves the D006 finding on the same line.
    code = "import time\nt = time.time()  # jawslint: disable=D001\n"
    assert parallel_hits(code) == [("D006", 2)]


# ---------------------------------------------------------------------------
# Suppressions
# ---------------------------------------------------------------------------
def test_per_line_suppression():
    code = "import time\nt = time.time()  # jawslint: disable=D001\n"
    assert hits(code) == []


def test_per_line_suppression_with_reason():
    code = (
        "import time\n"
        "t = time.time()  # jawslint: disable=D001 - profiling only\n"
    )
    assert hits(code) == []


def test_suppression_is_rule_specific():
    # Suppressing D002 does not hide a D001 finding on the same line.
    code = "import time\nt = time.time()  # jawslint: disable=D002\n"
    assert hits(code) == [("D001", 2)]


def test_per_line_suppress_all_rules():
    code = "import time\nt = time.time()  # jawslint: disable\n"
    assert hits(code) == []


def test_suppression_only_covers_its_line():
    code = (
        "import time\n"
        "a = time.time()  # jawslint: disable=D001\n"
        "b = time.time()\n"
    )
    assert hits(code) == [("D001", 3)]


def test_file_wide_suppression():
    code = (
        "# jawslint: disable-file=D001\n"
        "import time\n"
        "a = time.time()\n"
        "b = time.monotonic()\n"
    )
    assert hits(code) == []


def test_file_wide_suppression_leaves_other_rules():
    code = (
        "# jawslint: disable-file=D001\n"
        "import time\n"
        "import random\n"
        "a = time.time()\n"
        "b = random.random()\n"
    )
    assert hits(code) == [("D002", 5)]


# ---------------------------------------------------------------------------
# File/path plumbing and the CLI entry point
# ---------------------------------------------------------------------------
def test_syntax_error_reported_as_e000(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def f(:\n")
    found = lint_file(bad)
    assert [v.rule for v in found] == ["E000"]


def test_lint_paths_recurses_and_sorts(tmp_path):
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "b.py").write_text("import time\nt = time.time()\n")
    (tmp_path / "a.py").write_text("import random\nx = random.random()\n")
    (tmp_path / "__pycache__").mkdir()
    (tmp_path / "__pycache__" / "c.py").write_text("import time\nt = time.time()\n")
    found = lint_paths([tmp_path])
    assert [(Path(v.path).name, v.rule) for v in found] == [("a.py", "D002"), ("b.py", "D001")]


def test_main_exit_codes(tmp_path, capsys):
    dirty = tmp_path / "dirty.py"
    dirty.write_text("import time\nt = time.time()\n")
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    assert main([str(dirty)]) == 1
    out = capsys.readouterr().out
    assert "D001" in out and "dirty.py" in out
    assert main([str(clean)]) == 0


def test_main_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in RULES:
        assert rule in out


def test_cli_lint_subcommand(tmp_path):
    from repro.cli import main as cli_main

    dirty = tmp_path / "dirty.py"
    dirty.write_text("import random\nx = random.random()\n")
    assert cli_main(["lint", str(dirty)]) == 1
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    assert cli_main(["lint", str(clean)]) == 0


# ---------------------------------------------------------------------------
# D007: unseeded RNG construction in fuzz scenario code
# ---------------------------------------------------------------------------
FUZZ_PATH = "src/repro/fuzz/build.py"


def fuzz_hits(code, path=FUZZ_PATH):
    return [(v.rule, v.line) for v in lint_source(textwrap.dedent(code), path=path)]


D007_BAD = [
    "import random\nrng = random.Random()\n",
    "import numpy as np\nrng = np.random.default_rng()\n",
    "import numpy\nrng = numpy.random.default_rng()\n",
    "import numpy as np\nrng = np.random.RandomState()\n",
]


@pytest.mark.parametrize("code", D007_BAD)
def test_d007_flags_unseeded_rng_in_fuzz_scope(code):
    assert fuzz_hits(code) == [("D007", 2)]


def test_d007_flags_system_random_even_seeded():
    # OS entropy can never be reproduced, seed argument or not.
    code = "import random\nrng = random.SystemRandom(42)\n"
    assert fuzz_hits(code) == [("D007", 2)]


def test_d007_silent_on_seeded_constructors():
    code = (
        "import random\n"
        "import numpy as np\n"
        'a = random.Random(f"{seed}:scenario")\n'
        "b = np.random.default_rng(entry_seed)\n"
        "c = np.random.RandomState(7)\n"
    )
    assert fuzz_hits(code) == []


@pytest.mark.parametrize("code", D007_BAD)
def test_d007_scoped_to_fuzz_paths_only(code):
    assert fuzz_hits(code, path="src/repro/engine/simulator.py") == []


def test_d007_suppression():
    code = "import random\nrng = random.Random()  # jawslint: disable=D007 - doc example\n"
    assert fuzz_hits(code) == []


def test_d007_listed_in_rules():
    assert "D007" in RULES
    assert "fuzz" in RULES["D007"]


# ---------------------------------------------------------------------------
# D400: per-element Python loops over columnar arrays (fastengine scope)
# ---------------------------------------------------------------------------
FASTENGINE_PATH = "src/repro/fastengine/hotloop.py"


def fastengine_hits(code, path=FASTENGINE_PATH):
    return [(v.rule, v.line) for v in lint_source(textwrap.dedent(code), path=path)]


D400_BAD = [
    "for u in ut_col:\n    total += u\n",
    "for i, u in enumerate(ut_col):\n    pass\n",
    "for a, b in zip(ids_col, oldest_col):\n    pass\n",
    "for v in oldest_col[:n]:\n    pass\n",
    "for v in self.queues.ut_col:\n    pass\n",
    "xs = [f(v) for v in ut_col]\n",
    "for v in arr.flat:\n    pass\n",
    "import numpy as np\nfor v in np.nditer(arr):\n    pass\n",
]


@pytest.mark.parametrize("code", D400_BAD)
def test_d400_flags_per_element_columnar_loops(code):
    hits = fastengine_hits(code)
    assert hits and all(rule == "D400" for rule, _ in hits), hits


def test_d400_silent_on_vectorized_code():
    code = (
        "lo = ut_col[:n].min()\n"
        "ties = ids_col[:n][(v - lo) / span == 1.0]\n"
        "drained = np.sort(tie_ids).tolist()\n"
        "for batch in batches:\n"
        "    pass\n"
        "for atom_id, subs in batch.atoms:\n"
        "    pass\n"
    )
    assert fastengine_hits(code) == []


@pytest.mark.parametrize("code", D400_BAD[:3])
def test_d400_scoped_to_fastengine_paths_only(code):
    assert fastengine_hits(code, path="src/repro/engine/simulator.py") == []


def test_d400_suppression():
    code = (
        "for u in ut_col:  "
        "# jawslint: disable=D400 - cold init path, runs once per trace\n"
        "    pass\n"
    )
    assert fastengine_hits(code) == []


def test_d400_listed_in_rules_and_not_baselinable():
    from repro.analysis.lint import NON_BASELINABLE_RULES

    assert "D400" in RULES
    assert "fast-engine" in RULES["D400"]
    assert "D400" in NON_BASELINABLE_RULES


def test_d400_baseline_entry_rejected(tmp_path):
    import json

    from repro.analysis.baseline import Baseline, BaselineError

    ledger = tmp_path / "jawslint-baseline.json"
    ledger.write_text(
        json.dumps(
            {
                "version": 1,
                "entries": [
                    {
                        "rule": "D400",
                        "path": "src/repro/fastengine/hotloop.py",
                        "symbol": "drain",
                        "rationale": "tempting but forbidden",
                    }
                ],
            }
        )
    )
    with pytest.raises(BaselineError, match="cannot be baselined"):
        Baseline.load(ledger)


# ---------------------------------------------------------------------------
# The tree itself must stay clean (suppressions included).
# ---------------------------------------------------------------------------
def test_source_tree_is_clean():
    """Per-file pass only: every D001–D007 finding is fixed or carries
    an inline suppression.  The whole-program passes plus the baseline
    ledger are covered by tests/test_jawslint_interproc.py."""
    found = lint_paths([REPO_ROOT / "src" / "repro", REPO_ROOT / "tests"])
    assert found == [], "\n".join(v.render() for v in found)


def test_full_analysis_is_clean_with_baseline():
    """What CI runs: both layers over the whole tree, gated by the
    checked-in suppression ledger."""
    from repro.analysis.baseline import Baseline
    from repro.analysis.lint import run_analysis

    report = run_analysis(
        [REPO_ROOT / "src" / "repro", REPO_ROOT / "tests"],
        baseline=Baseline.load(REPO_ROOT / "jawslint-baseline.json"),
    )
    assert report.violations == [], "\n".join(
        v.render() for v in report.violations
    )
    assert report.baseline_unused == []
