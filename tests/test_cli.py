"""Tests for the command-line interface (in-process, no subprocess)."""

import pytest

from repro.cli import main
from repro.workload.trace import Trace


@pytest.fixture
def trace_file(tmp_path):
    path = tmp_path / "t.npz"
    rc = main(
        [
            "trace",
            "generate",
            "--out",
            str(path),
            "--jobs",
            "12",
            "--span",
            "60",
            "--seed",
            "3",
        ]
    )
    assert rc == 0
    return path


class TestTraceCommands:
    def test_generate_writes_loadable_trace(self, tmp_path, capsys):
        path = tmp_path / "g.npz"
        rc = main(
            ["trace", "generate", "--out", str(path), "--jobs", "12", "--span", "60", "--seed", "3"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "frac_queries_in_jobs" in out
        trace = Trace.load(path)
        assert trace.n_jobs >= 12

    def test_generate_with_speedup(self, tmp_path):
        a = tmp_path / "a.npz"
        b = tmp_path / "b.npz"
        main(["trace", "generate", "--out", str(a), "--jobs", "10", "--span", "100", "--seed", "1"])
        main(
            [
                "trace", "generate", "--out", str(b), "--jobs", "10", "--span", "100",
                "--seed", "1", "--speedup", "4",
            ]
        )
        ta, tb = Trace.load(a), Trace.load(b)
        assert tb.span == pytest.approx(ta.span / 4)

    def test_info(self, trace_file, capsys):
        assert main(["trace", "info", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "dataset:" in out
        assert "span:" in out


class TestRunCommands:
    def test_run_single_scheduler(self, trace_file, capsys):
        assert main(["run", "--trace", str(trace_file), "--scheduler", "liferaft2"]) == 0
        out = capsys.readouterr().out
        assert "throughput_qps" in out

    def test_run_with_cache_policy(self, trace_file, capsys):
        assert main(["run", "--trace", str(trace_file), "--cache", "slru"]) == 0

    def test_compare(self, trace_file, capsys):
        rc = main(
            [
                "compare", "--trace", str(trace_file),
                "--schedulers", "noshare", "jaws2",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "noshare" in out and "jaws2" in out

    def test_unknown_scheduler_rejected(self, trace_file):
        with pytest.raises(SystemExit):
            main(["run", "--trace", str(trace_file), "--scheduler", "belady"])


class TestExperimentCommand:
    def test_jobid_experiment(self, capsys):
        assert main(["experiment", "jobid"]) == 0
        out = capsys.readouterr().out
        assert "precision" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])


class TestExperimentCsvExport:
    def test_fig12_csv(self, tmp_path, capsys, monkeypatch):
        import repro.cli as cli

        stub = {"ks": [1, 5], "throughput": [0.5, 0.6], "liferaft2": 0.4}
        monkeypatch.setitem(
            cli.EXPERIMENTS, "fig12", (lambda scale: stub, lambda d: "fig12 stub")
        )
        out = tmp_path / "fig12.csv"
        assert main(["experiment", "fig12", "--csv", str(out)]) == 0
        assert out.exists()
        assert "k,throughput_qps" in out.read_text()

    def test_unsupported_csv_skipped(self, tmp_path, capsys, monkeypatch):
        import repro.cli as cli

        monkeypatch.setitem(
            cli.EXPERIMENTS, "jobid", (lambda scale: {}, lambda d: "jobid stub")
        )
        out = tmp_path / "jobid.csv"
        assert main(["experiment", "jobid", "--csv", str(out)]) == 0
        assert not out.exists()
        assert "skipped" in capsys.readouterr().out
