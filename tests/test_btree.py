"""Tests for the clustered B+-tree access path."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.btree import BPlusTree


class TestBasics:
    def test_empty(self):
        tree = BPlusTree()
        assert len(tree) == 0
        assert tree.get(5) is None
        assert 5 not in tree

    def test_order_validated(self):
        with pytest.raises(ValueError):
            BPlusTree(order=3)

    def test_insert_get(self):
        tree = BPlusTree(order=4)
        for k in [5, 1, 9, 3, 7]:
            tree.insert(k, k * 10)
        assert len(tree) == 5
        for k in [5, 1, 9, 3, 7]:
            assert tree.get(k) == k * 10

    def test_duplicate_insert_replaces(self):
        tree = BPlusTree(order=4)
        tree.insert(1, 10)
        tree.insert(1, 20)
        assert len(tree) == 1
        assert tree.get(1) == 20

    def test_many_keys_force_splits(self):
        tree = BPlusTree(order=4)
        keys = list(range(500))
        rng = np.random.default_rng(0)
        rng.shuffle(keys)
        for k in keys:
            tree.insert(k, -k)
        assert len(tree) == 500
        assert tree.depth() > 2
        assert all(tree.get(k) == -k for k in range(500))


class TestRangeScan:
    def make(self, n=300, order=8):
        tree = BPlusTree(order=order)
        for k in range(0, 2 * n, 2):  # even keys only
            tree.insert(k, k)
        return tree

    def test_full_scan_ordered(self):
        tree = self.make()
        keys = [k for k, _ in tree.range(-1, 10**9)]
        assert keys == sorted(keys)
        assert len(keys) == 300

    def test_subrange(self):
        tree = self.make()
        got = [k for k, _ in tree.range(10, 21)]
        assert got == [10, 12, 14, 16, 18, 20]

    def test_range_missing_endpoints(self):
        tree = self.make()
        got = [k for k, _ in tree.range(11, 15)]
        assert got == [12, 14]

    def test_empty_range(self):
        tree = self.make()
        assert list(tree.range(7, 7)) == []
        assert list(tree.range(10, 5)) == []

    def test_keys_iterator(self):
        tree = self.make(n=50)
        assert list(tree.keys()) == list(range(0, 100, 2))


class TestClusteredBuild:
    def test_identity_layout(self):
        tree = BPlusTree.build_clustered(1000, order=16)
        assert len(tree) == 1000
        # Clustered: key i lives at physical block i.
        assert all(tree.get(i) == i for i in range(0, 1000, 37))

    def test_leaf_chain_is_physically_sequential(self):
        tree = BPlusTree.build_clustered(512, order=8)
        blocks = [v for _, v in tree.range(0, 512)]
        assert blocks == list(range(512))


class TestProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(-(10**6), 10**6), min_size=1, max_size=200, unique=True))
    def test_matches_dict_semantics(self, keys):
        tree = BPlusTree(order=6)
        model = {}
        for k in keys:
            tree.insert(k, k ^ 42)
            model[k] = k ^ 42
        assert len(tree) == len(model)
        for k in keys:
            assert tree.get(k) == model[k]
        lo, hi = min(keys) - 1, max(keys) + 1
        assert [k for k, _ in tree.range(lo, hi)] == sorted(model)

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.integers(0, 10**4), min_size=5, max_size=100, unique=True),
        st.integers(0, 10**4),
        st.integers(0, 10**4),
    )
    def test_arbitrary_range_queries(self, keys, a, b):
        lo, hi = min(a, b), max(a, b)
        tree = BPlusTree(order=5)
        for k in keys:
            tree.insert(k, k)
        expected = sorted(k for k in keys if lo <= k < hi)
        assert [k for k, _ in tree.range(lo, hi)] == expected


class TestPickling:
    def _leaf_chain(self, tree):
        node = tree._root
        while not node.is_leaf:
            node = node.children[0]
        out = []
        while node is not None:
            out.append((tuple(node.keys), tuple(node.values)))
            node = node.next_leaf
        return out

    def test_roundtrip_preserves_exact_layout(self):
        import pickle

        tree = BPlusTree.build_clustered(5000)
        clone = pickle.loads(pickle.dumps(tree))
        assert len(clone) == len(tree)
        assert clone.depth() == tree.depth()
        assert list(clone.range(0, 5000)) == list(tree.range(0, 5000))
        # Leaf positions ARE physical addresses: the node layout must
        # survive bit-exactly, not merely the key/value mapping.
        assert self._leaf_chain(clone) == self._leaf_chain(tree)

    def test_deep_tree_does_not_hit_recursion_limit(self):
        import pickle

        # Far more leaves than the default recursion limit; default
        # (recursive) pickling of the next_leaf chain would blow up.
        tree = BPlusTree.build_clustered(120_000)
        assert len(self._leaf_chain(tree)) > 2000
        clone = pickle.loads(pickle.dumps(tree))
        assert clone.get(119_999) == 119_999

    def test_restored_tree_stays_mutable(self):
        import pickle

        tree = BPlusTree.build_clustered(500)
        clone = pickle.loads(pickle.dumps(tree))
        clone.insert(10_000, 1)
        assert clone.get(10_000) == 1
        assert len(clone) == 501
