"""Tests for the precedence/gating graph."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.gating import PrecedenceGraph
from repro.core.states import QueryState


def fs(*atoms):
    return frozenset(atoms)


def two_sharing_jobs():
    """Job 0: q0..q2 on atoms 1,2,3; job 1: q10..q12 on atoms 1,9,3."""
    g = PrecedenceGraph()
    g.add_job(0, [0, 1, 2], [fs(1), fs(2), fs(3)])
    g.add_job(1, [10, 11, 12], [fs(1), fs(9), fs(3)])
    return g


class TestConstruction:
    def test_duplicate_job_rejected(self):
        g = PrecedenceGraph()
        g.add_job(0, [0], [fs(1)])
        with pytest.raises(ValueError):
            g.add_job(0, [1], [fs(1)])

    def test_duplicate_query_rejected(self):
        g = PrecedenceGraph()
        g.add_job(0, [0], [fs(1)])
        with pytest.raises(ValueError):
            g.add_job(1, [0], [fs(2)])

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            PrecedenceGraph().add_job(0, [0, 1], [fs(1)])

    def test_initial_state_wait(self):
        g = two_sharing_jobs()
        assert g.state(0) is QueryState.WAIT
        assert g.partners(0) == frozenset()


class TestAdmission:
    def test_simple_edge(self):
        g = two_sharing_jobs()
        assert g.admit_edge(0, 10)
        assert 10 in g.partners(0) and 0 in g.partners(10)
        assert g.edges_admitted == 1

    def test_idempotent(self):
        g = two_sharing_jobs()
        assert g.admit_edge(0, 10)
        assert g.admit_edge(0, 10)
        assert g.edges_admitted == 1

    def test_same_job_rejected(self):
        g = two_sharing_jobs()
        assert not g.admit_edge(0, 1)
        assert g.edges_rejected == 1

    def test_missing_vertex_rejected(self):
        g = two_sharing_jobs()
        assert not g.admit_edge(0, 999)

    def test_done_vertex_rejected(self):
        g = two_sharing_jobs()
        g.set_state(10, QueryState.DONE)
        assert not g.admit_edge(0, 10)

    def test_crossing_edges_rejected(self):
        """Edges (q0,q12) and (q2,q10) would deadlock: job0 needs q0
        before q2, job1 needs q10 before q12, but co-scheduling links
        them in opposite order -> cycle."""
        g = two_sharing_jobs()
        assert g.admit_edge(0, 12)
        assert not g.admit_edge(2, 10)

    def test_parallel_edges_accepted(self):
        g = two_sharing_jobs()
        assert g.admit_edge(0, 10)
        assert g.admit_edge(2, 12)

    def test_group_with_two_queries_of_one_job_rejected(self):
        g = PrecedenceGraph()
        g.add_job(0, [0, 1], [fs(1), fs(2)])
        g.add_job(1, [10], [fs(1)])
        g.add_job(2, [20], [fs(2)])
        assert g.admit_edge(0, 10)
        assert g.admit_edge(1, 20)
        # Linking the two groups would co-schedule q0 and q1 (same job).
        assert not g.admit_edge(10, 20)

    def test_transitive_clique(self):
        g = PrecedenceGraph()
        g.add_job(0, [0], [fs(1)])
        g.add_job(1, [10], [fs(1)])
        g.add_job(2, [20], [fs(1)])
        assert g.admit_edge(0, 10)
        assert g.admit_edge(20, 0)
        # 20 inherits the edge to 10 (cliques).
        assert g.partners(20) == frozenset({0, 10})

    def test_three_job_cycle_rejected(self):
        """Pairwise-feasible edges that form a cycle through three jobs
        must be rejected at the third admission."""
        g = PrecedenceGraph()
        g.add_job(0, [0, 1], [fs(1), fs(2)])
        g.add_job(1, [10, 11], [fs(2), fs(3)])
        g.add_job(2, [20, 21], [fs(3), fs(1)])
        assert g.admit_edge(1, 10)  # j0.q1 with j1.q0
        assert g.admit_edge(11, 20)  # j1.q1 with j2.q0
        # j2.q1 with j0.q0 closes the loop.
        assert not g.admit_edge(21, 0)


class TestRelease:
    def test_ungated_query_releases_alone(self):
        g = two_sharing_jobs()
        g.set_state(1, QueryState.READY)
        assert g.releasable_group(1) == [1]

    def test_gated_waits_for_partner(self):
        g = two_sharing_jobs()
        g.admit_edge(0, 10)
        g.set_state(0, QueryState.READY)
        assert g.releasable_group(0) is None
        g.set_state(10, QueryState.READY)
        assert sorted(g.releasable_group(0)) == [0, 10]

    def test_partner_in_queue_does_not_block(self):
        g = two_sharing_jobs()
        g.admit_edge(0, 10)
        g.set_state(10, QueryState.QUEUE)
        g.set_state(0, QueryState.READY)
        assert g.releasable_group(0) == [0]

    def test_done_partner_does_not_block(self):
        g = two_sharing_jobs()
        g.admit_edge(0, 10)
        g.mark_done(10)
        g.set_state(0, QueryState.READY)
        assert g.releasable_group(0) == [0]


class TestPruning:
    def test_mark_done_removes_vertex(self):
        g = two_sharing_jobs()
        g.admit_edge(0, 10)
        g.mark_done(0)
        assert 0 not in g
        assert g.partners(10) == frozenset()

    def test_mark_done_idempotent(self):
        g = two_sharing_jobs()
        g.mark_done(0)
        g.mark_done(0)

    def test_job_removed_when_empty(self):
        g = PrecedenceGraph()
        g.add_job(0, [0], [fs(1)])
        g.mark_done(0)
        assert g.jobs() == []


class TestGatingNumbers:
    def test_no_edges_all_zero(self):
        g = two_sharing_jobs()
        assert set(g.gating_numbers().values()) == {0}

    def test_increase_along_job(self):
        g = two_sharing_jobs()
        g.admit_edge(0, 10)
        g.admit_edge(2, 12)
        numbers = g.gating_numbers()
        # Later queries must wait for earlier gating edges.
        assert numbers[0] == 0
        assert numbers[2] >= 1
        assert numbers[12] >= 1


@st.composite
def job_set(draw):
    n_jobs = draw(st.integers(2, 4))
    jobs = []
    for j in range(n_jobs):
        length = draw(st.integers(1, 4))
        atoms = [
            draw(st.frozensets(st.integers(0, 4), min_size=0, max_size=2))
            for _ in range(length)
        ]
        jobs.append(atoms)
    return jobs


class TestDeadlockFreedomProperty:
    @settings(max_examples=60, deadline=None)
    @given(job_set(), st.integers(0, 2**31 - 1))
    def test_any_admitted_edge_set_is_schedulable(self, jobs, seed):
        """After arbitrary admissions, simulating release in precedence
        order always completes every query (no deadlock)."""
        import random

        rng = random.Random(seed)
        g = PrecedenceGraph()
        qid = 0
        chains = []
        for j, atoms in enumerate(jobs):
            ids = list(range(qid, qid + len(atoms)))
            qid += len(atoms)
            g.add_job(j, ids, atoms)
            chains.append(ids)
        # Try admitting random cross-job edges.
        all_ids = [q for chain in chains for q in chain]
        for _ in range(10):
            a, b = rng.sample(all_ids, 2)
            g.admit_edge(a, b)

        # Simulate: a query arrives when its predecessor is DONE; a
        # READY group releases when fully arrived; QUEUE -> DONE freely.
        next_idx = {j: 0 for j in range(len(chains))}
        done: set[int] = set()
        total = len(all_ids)
        for _ in range(4 * total + 8):
            progressed = False
            for j, chain in enumerate(chains):
                i = next_idx[j]
                if i >= len(chain):
                    continue
                q = chain[i]
                if g.state(q) is QueryState.WAIT:
                    g.set_state(q, QueryState.READY)
                ready = g.releasable_group(q)
                if ready is not None:
                    for r in ready:
                        g.set_state(r, QueryState.QUEUE)
                if g.state(q) is QueryState.QUEUE:
                    g.mark_done(q)
                    done.add(q)
                    next_idx[j] += 1
                    progressed = True
            if len(done) == total:
                break
            if not progressed:
                # No QUEUE work: every frontier query must be READY and
                # blocked on a WAIT partner whose own chain advances
                # next round — assert at least one chain's frontier is
                # blocked on a *different* job's frontier, not a cycle.
                pass
        assert len(done) == total, f"deadlock: completed {len(done)}/{total}"
