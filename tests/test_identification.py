"""Tests for §IV-A job identification heuristics."""

import pytest

from repro.grid.dataset import DatasetSpec
from repro.workload.generator import WorkloadParams, generate_trace
from repro.workload.identification import (
    JobIdentifier,
    LogRecord,
    flatten_trace,
    identification_accuracy,
)

SPEC = DatasetSpec.small(n_timesteps=16, atoms_per_axis=4)


def rec(qid, user=0, op="interp", ts=0, t=0.0, n=100, job=None):
    return LogRecord(qid, user, op, ts, t, n, true_job_id=job)


class TestHeuristics:
    def test_single_chain_grouped(self):
        ident = JobIdentifier()
        records = [rec(i, ts=i, t=3.0 * i) for i in range(5)]
        ids = {ident.observe(r) for r in records}
        assert len(ids) == 1

    def test_different_users_split(self):
        ident = JobIdentifier()
        a = ident.observe(rec(0, user=1))
        b = ident.observe(rec(1, user=2))
        assert a != b

    def test_different_ops_split(self):
        ident = JobIdentifier()
        a = ident.observe(rec(0, op="interp"))
        b = ident.observe(rec(1, op="stats"))
        assert a != b

    def test_long_gap_splits(self):
        ident = JobIdentifier(gap_threshold=60.0)
        a = ident.observe(rec(0, ts=0, t=0.0))
        b = ident.observe(rec(1, ts=1, t=500.0))
        assert a != b

    def test_timestep_jump_splits(self):
        ident = JobIdentifier(max_step_delta=2)
        a = ident.observe(rec(0, ts=0, t=0.0))
        b = ident.observe(rec(1, ts=9, t=3.0))
        assert a != b

    def test_size_change_splits(self):
        ident = JobIdentifier(size_tolerance=0.1)
        a = ident.observe(rec(0, n=100, t=0.0))
        b = ident.observe(rec(1, n=300, ts=1, t=3.0))
        assert a != b

    def test_backwards_timestep_splits_new_job(self):
        ident = JobIdentifier()
        a = ident.observe(rec(0, ts=5, t=0.0))
        b = ident.observe(rec(1, ts=2, t=3.0))
        assert a != b

    def test_concurrent_jobs_same_user_separated_by_size(self):
        """Two interleaved experiments from one user with distinct cloud
        sizes must not be merged (the multi-open-job fix)."""
        ident = JobIdentifier(size_tolerance=0.1)
        ids = []
        for i in range(4):
            ids.append(ident.observe(rec(2 * i, ts=i, t=6.0 * i, n=100)))
            ids.append(ident.observe(rec(2 * i + 1, ts=i, t=6.0 * i + 1, n=500)))
        small_jobs = set(ids[0::2])
        large_jobs = set(ids[1::2])
        assert len(small_jobs) == 1
        assert len(large_jobs) == 1
        assert small_jobs != large_jobs

    def test_stride_established_then_enforced(self):
        ident = JobIdentifier()
        ident.observe(rec(0, ts=0, t=0.0))
        ident.observe(rec(1, ts=2, t=3.0))  # stride 2 established
        a = ident.observe(rec(2, ts=4, t=6.0))  # continues
        b = ident.observe(rec(3, ts=9, t=9.0))  # violates stride
        assert a != b
        assert ident.assignments[2] == ident.assignments[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            JobIdentifier(gap_threshold=0)


class TestEndToEndAccuracy:
    def test_high_f1_on_generated_trace(self):
        trace = generate_trace(SPEC, WorkloadParams(n_jobs=120, span=2400.0, seed=5))
        records = flatten_trace(trace)
        assignments = JobIdentifier().run(records)
        scores = identification_accuracy(records, assignments)
        assert scores["f1"] > 0.85
        assert scores["precision"] > 0.85
        assert scores["recall"] > 0.85

    def test_perfect_grouping_scores_one(self):
        trace = generate_trace(SPEC, WorkloadParams(n_jobs=30, span=600.0, seed=6))
        records = flatten_trace(trace)
        truth = {r.query_id: r.true_job_id for r in records}
        scores = identification_accuracy(records, truth)
        assert scores == {"precision": 1.0, "recall": 1.0, "f1": 1.0}

    def test_all_singletons_zero_recall(self):
        trace = generate_trace(SPEC, WorkloadParams(n_jobs=30, span=600.0, seed=6))
        records = flatten_trace(trace)
        singles = {r.query_id: r.query_id for r in records}
        scores = identification_accuracy(records, singles)
        assert scores["recall"] == 0.0
