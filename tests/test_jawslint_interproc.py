"""Corpus for the whole-program determinism passes (D100/D200/D300
families), the baseline ledger, the machine-readable report formats,
and the analyzer's own runtime budget.

Mirrors the per-file corpus in ``tests/test_jawslint.py``: every rule
family has bad fixtures that must fire (exact rule, module, line),
good fixtures that must stay silent, and a seeded-bug test that plants
the regression the rule was built for and asserts it is caught.
"""

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis.baseline import Baseline, BaselineError
from repro.analysis.callgraph import build_call_graph
from repro.analysis.lint import RULES, main, run_analysis
from repro.analysis.project import ProjectModel, module_name_for_path, scope_family
from repro.analysis.rules_interproc import InterprocConfig, run_interproc

REPO_ROOT = Path(__file__).resolve().parent.parent


def interproc(sources, config=None):
    """``[(rule, module, line), …]`` from the whole-program passes over
    a ``{module name: source}`` fixture tree."""
    model = ProjectModel.from_sources(
        {name: textwrap.dedent(src) for name, src in sources.items()}
    )
    violations = run_interproc(model, config)
    out = []
    for violation in violations:
        module = violation.path[: -len(".py")].replace("/", ".")
        out.append((violation.rule, module, violation.line))
    return out


def rules_only(found):
    return [rule for rule, _, _ in found]


# ---------------------------------------------------------------------------
# Project model basics
# ---------------------------------------------------------------------------
def test_module_name_for_path():
    assert module_name_for_path(Path("src/repro/engine/faults.py")) == "repro.engine.faults"
    assert module_name_for_path(Path("src/repro/fuzz/__init__.py")) == "repro.fuzz"
    assert module_name_for_path(Path("scripts/record_experiments.py")) is None


def test_scope_families():
    assert scope_family("repro.fuzz.build") == "fuzz"
    assert scope_family("repro.engine.faults") == "fault"
    assert scope_family("repro.engine.simulator") == "engine"
    assert scope_family("repro.core.jaws") == "engine"


def test_attribute_inventory_and_call_graph():
    model = ProjectModel.from_sources(
        {
            "repro.engine.simulator": textwrap.dedent(
                """
                from repro.core.sched import step

                class Simulator:
                    def __init__(self):
                        self.clock = 0.0
                        self._seq = 0

                    def run(self):
                        self._seq += 1
                        return step(self.clock)
                """
            ),
            "repro.core.sched": "def step(t):\n    return t\n",
        }
    )
    cls = model.classes["repro.engine.simulator.Simulator"]
    assert {a.name for a in cls.attr_assigns} == {"clock", "_seq"}
    graph = build_call_graph(model)
    reachable = graph.reachable_from(["repro.engine.simulator.Simulator.run"])
    assert "repro.core.sched.step" in reachable


# ---------------------------------------------------------------------------
# D100: RNG stream provenance (cross-subsystem draws)
# ---------------------------------------------------------------------------
FAULTS_WITH_STREAM = """
    import random

    class FaultInjector:
        def __init__(self, seed):
            self._rng = random.Random(seed)

        def draw(self):
            return self._rng.random()
"""


def test_d100_flags_cross_subsystem_attribute_draw():
    found = interproc(
        {
            "repro.engine.faults": FAULTS_WITH_STREAM,
            "repro.cluster.balance": """
                def rebalance(injector):
                    return injector._rng.random()
            """,
        }
    )
    assert ("D100", "repro.cluster.balance", 3) in found


def test_d100_flags_draw_on_stream_received_as_parameter():
    found = interproc(
        {
            "repro.workload.generator": """
                import random
                from repro.grid.noise import perturb

                def generate(seed):
                    rng = random.Random(seed)
                    return perturb(rng)
            """,
            "repro.grid.noise": """
                def perturb(rng):
                    return rng.random()
            """,
        }
    )
    assert ("D100", "repro.grid.noise", 3) in found


def test_d100_silent_within_owning_subsystem():
    found = interproc(
        {
            "repro.engine.faults": FAULTS_WITH_STREAM,
            "repro.engine.recover": """
                def jitter(injector):
                    return injector._rng.random()
            """,
        }
    )
    assert rules_only(found) == []


def test_d100_silent_on_local_streams():
    found = interproc(
        {
            "repro.workload.generator": """
                import numpy as np

                def make(seed):
                    rng = np.random.default_rng(seed)
                    return rng.integers(0, 5)
            """,
        }
    )
    assert rules_only(found) == []


def test_d100_seeded_bug_cross_stream_contamination():
    """Plant the exact bug the rule exists for: overload code reaching
    into the fault injector's seeded stream.  One extra draw there
    shifts every subsequent fault decision — a determinism race that
    per-file lint can never see."""
    clean = {
        "repro.engine.faults": FAULTS_WITH_STREAM,
        "repro.overload.shedding": """
            def pick_victim(queue):
                return queue[0]
        """,
    }
    assert rules_only(interproc(clean)) == []
    planted = dict(clean)
    planted["repro.overload.shedding"] = """
        def pick_victim(queue, injector):
            index = int(injector._rng.random() * len(queue))
            return queue[index]
    """
    assert "D100" in rules_only(interproc(planted))


# ---------------------------------------------------------------------------
# D101: RNG streams crossing engine/fault/fuzz scope families
# ---------------------------------------------------------------------------
def test_d101_flags_fuzz_stream_handed_to_engine():
    found = interproc(
        {
            "repro.fuzz.build": """
                import random
                from repro.engine.warp import warp_trace

                def build(seed):
                    rng = random.Random(seed)
                    return warp_trace(rng)
            """,
            "repro.engine.warp": """
                def warp_trace(rng):
                    return rng
            """,
        }
    )
    assert ("D101", "repro.fuzz.build", 7) in found


def test_d101_silent_within_one_scope_family():
    found = interproc(
        {
            "repro.fuzz.build": """
                import random
                from repro.fuzz.waves import make_wave

                def build(seed):
                    rng = random.Random(seed)
                    return make_wave(rng)
            """,
            "repro.fuzz.waves": """
                def make_wave(rng):
                    return rng.random()
            """,
        }
    )
    assert "D101" not in rules_only(found)


# ---------------------------------------------------------------------------
# D200: checkpoint state-capture completeness (unpicklable attributes)
# ---------------------------------------------------------------------------
def test_d200_flags_lambda_on_snapshot_root():
    found = interproc(
        {
            "repro.engine.simulator": """
                class Simulator:
                    def __init__(self):
                        self.clock = 0.0
                        self._on_done = lambda result: result
            """,
        }
    )
    assert ("D200", "repro.engine.simulator", 5) in found


@pytest.mark.parametrize(
    "value,label",
    [
        ("(x for x in [])", "generator"),
        ("open('log.txt')", "open file"),
        ("threading.Lock()", "lock"),
    ],
)
def test_d200_flags_other_unpicklable_kinds(value, label):
    found = interproc(
        {
            "repro.engine.simulator": f"""
                import threading

                class Simulator:
                    def __init__(self):
                        self._bad = {value}
            """,
        }
    )
    assert rules_only(found) == ["D200"], label


def test_d200_follows_attribute_types_transitively():
    """The participant set is the closure of the snapshot roots: an
    unpicklable attribute two hops from the Simulator still fires."""
    found = interproc(
        {
            "repro.engine.simulator": """
                from repro.storage.index import ClusteredIndex

                class Simulator:
                    def __init__(self):
                        self.index = ClusteredIndex()
            """,
            "repro.storage.index": """
                class ClusteredIndex:
                    def __init__(self):
                        self._scan_cb = lambda key: key
            """,
        }
    )
    assert ("D200", "repro.storage.index", 4) in found


def test_d200_respects_capture_exclusions():
    """Attributes excluded from ``_capture_state`` (the checkpoint
    manager holds open files by design) never make their class a
    participant."""
    found = interproc(
        {
            "repro.engine.simulator": """
                from repro.recovery.checkpoint import CheckpointManager

                class Simulator:
                    def __init__(self):
                        self.clock = 0.0
                        self._checkpointer = CheckpointManager()
            """,
            "repro.recovery.checkpoint": """
                class CheckpointManager:
                    def __init__(self):
                        self._wal = open('wal.log', 'a')
            """,
        }
    )
    assert rules_only(found) == []


def test_d200_not_flagged_outside_participant_closure():
    found = interproc(
        {
            "repro.experiments.report": """
                class TableFormatter:
                    def __init__(self):
                        self._fmt = lambda row: str(row)
            """,
        }
    )
    assert rules_only(found) == []


# ---------------------------------------------------------------------------
# D201: explicit __getstate__/__setstate__ completeness
# ---------------------------------------------------------------------------
COMPLETE_CODEC = """
    class BPlusTree:
        def __init__(self, order):
            self._order = order
            self._size = 0

        def insert(self, key):
            self._size += 1

        def __getstate__(self):
            return {"order": self._order, "size": self._size}

        def __setstate__(self, state):
            self._order = state["order"]
            self._size = state["size"]
"""


def test_d201_silent_on_complete_codec():
    assert rules_only(interproc({"repro.storage.btree": COMPLETE_CODEC})) == []


def test_d201_flags_attribute_missing_from_setstate():
    """The static analogue of the PR 3 BPlusTree bug: a new attribute
    is added to the class but the explicit snapshot codec never
    restores it, so crash/resume silently drops state."""
    found = interproc(
        {
            "repro.storage.btree": """
                class BPlusTree:
                    def __init__(self, order):
                        self._order = order
                        self._height = 1

                    def __getstate__(self):
                        return {"order": self._order}

                    def __setstate__(self, state):
                        self._order = state["order"]
            """,
        }
    )
    assert ("D201", "repro.storage.btree", 5) in found


def test_d201_exempts_dict_copy_getstate():
    """A ``dict(self.__dict__)``-style snapshot is complete by
    construction (the sanitizer's back-reference pattern)."""
    found = interproc(
        {
            "repro.analysis.sanitizer": """
                class SimulationSanitizer:
                    def __init__(self, sim):
                        self._sim = sim
                        self.checks = 0

                    def __getstate__(self):
                        state = dict(self.__dict__)
                        state["_sim"] = None
                        return state

                    def __setstate__(self, state):
                        self.__dict__.update(state)
            """,
        }
    )
    assert rules_only(found) == []


def test_d200_regression_fresh_unpicklable_attr_via_fixture_module(tmp_path):
    """Satellite regression for the PR 3 class of bug, end to end
    through the path-based model builder: a checkpoint-participating
    class in a fixture package gains a fresh unpicklable attribute and
    D200 must catch it on the next analyzer run."""
    pkg = tmp_path / "repro"
    (pkg / "engine").mkdir(parents=True)
    (pkg / "storage").mkdir()
    (pkg / "engine" / "simulator.py").write_text(
        textwrap.dedent(
            """
            from repro.storage.btree import BPlusTree

            class Simulator:
                def __init__(self):
                    self.clock = 0.0
                    self.index = BPlusTree()
            """
        )
    )
    btree = pkg / "storage" / "btree.py"
    btree.write_text(
        textwrap.dedent(
            """
            class BPlusTree:
                def __init__(self):
                    self._size = 0
            """
        )
    )
    model = ProjectModel.from_paths([tmp_path])
    assert run_interproc(model) == []

    # Plant the fresh attribute on the checkpoint-participating class.
    btree.write_text(
        btree.read_text()
        + "        self._compare = lambda a, b: a < b\n"
    )
    planted = run_interproc(ProjectModel.from_paths([tmp_path]))
    assert [v.rule for v in planted] == ["D200"]
    assert "_compare" in planted[0].message


# ---------------------------------------------------------------------------
# D300: transitive parallel-worker purity
# ---------------------------------------------------------------------------
def test_d300_flags_wall_clock_reachable_from_worker():
    found = interproc(
        {
            "repro.parallel.pool": """
                from repro.engine.runner import run_trace

                def _execute_spec(spec):
                    return run_trace(spec)
            """,
            "repro.engine.runner": """
                import time

                def run_trace(spec):
                    started = time.time()
                    return started
            """,
        }
    )
    assert ("D300", "repro.engine.runner", 5) in found


def test_d300_follows_dynamic_dispatch_two_hops():
    found = interproc(
        {
            "repro.parallel.pool": """
                from repro.engine.runner import run_trace

                def _execute_spec(spec):
                    return run_trace(spec)
            """,
            "repro.engine.runner": """
                def run_trace(spec):
                    return spec.scheduler.next_batch()
            """,
            "repro.core.sched": """
                import os

                class Scheduler:
                    def next_batch(self):
                        return os.getpid()
            """,
        }
    )
    assert ("D300", "repro.core.sched", 6) in found


def test_d300_flags_module_level_rng_in_closure():
    found = interproc(
        {
            "repro.parallel.pool": """
                from repro.engine.runner import run_trace

                def _execute_spec(spec):
                    return run_trace(spec)
            """,
            "repro.engine.runner": """
                import random

                def run_trace(spec):
                    return random.random()
            """,
        }
    )
    assert ("D300", "repro.engine.runner", 5) in found


def test_d300_silent_on_pure_closure():
    found = interproc(
        {
            "repro.parallel.pool": """
                from repro.engine.runner import run_trace

                def _execute_spec(spec):
                    return run_trace(spec)
            """,
            "repro.engine.runner": """
                import random

                def run_trace(spec):
                    rng = random.Random(spec)
                    return rng.random()
            """,
        }
    )
    assert rules_only(found) == []


def test_d300_silent_on_impurity_outside_closure():
    """A wall-clock read in code no worker can reach is D001's business
    (per-file pass), not D300's."""
    found = interproc(
        {
            "repro.parallel.pool": """
                def _execute_spec(spec):
                    return spec
            """,
            "repro.experiments.bench": """
                import time

                def run_bench():
                    return time.perf_counter()
            """,
        }
    )
    assert rules_only(found) == []


def test_d300_seeded_bug_deep_wall_clock():
    """Plant a wall-clock read three layers below the worker entry
    point and assert the closure still reaches it."""
    clean = {
        "repro.parallel.pool": """
            from repro.engine.runner import run_trace

            def _execute_spec(spec):
                return run_trace(spec)
        """,
        "repro.engine.runner": """
            from repro.engine.simulator import Simulator

            def run_trace(spec):
                return Simulator(spec).run()
        """,
        "repro.engine.simulator": """
            from repro.storage.disk import DiskModel

            class Simulator:
                def __init__(self, spec):
                    self.disk = DiskModel()

                def run(self):
                    return self.disk.read(0)
        """,
        "repro.storage.disk": """
            class DiskModel:
                def read(self, addr):
                    return addr
        """,
    }
    assert rules_only(interproc(clean)) == []
    planted = dict(clean)
    planted["repro.storage.disk"] = """
        import time

        class DiskModel:
            def read(self, addr):
                return addr + time.monotonic()
    """
    assert "D300" in rules_only(interproc(planted))


# ---------------------------------------------------------------------------
# Inline suppressions apply to whole-program findings too
# ---------------------------------------------------------------------------
def test_interproc_finding_honors_inline_suppression(tmp_path):
    pkg = tmp_path / "repro"
    (pkg / "parallel").mkdir(parents=True)
    (pkg / "engine").mkdir()
    (pkg / "parallel" / "pool.py").write_text(
        "from repro.engine.runner import run_trace\n"
        "def _execute_spec(spec):\n"
        "    return run_trace(spec)\n"
    )
    runner = pkg / "engine" / "runner.py"
    runner.write_text(
        "import time\n"
        "def run_trace(spec):\n"
        "    return time.time()\n"
    )
    dirty = run_analysis([tmp_path], baseline=None)
    assert "D300" in [v.rule for v in dirty.violations]
    runner.write_text(
        "import time\n"
        "def run_trace(spec):\n"
        "    return time.time()  # jawslint: disable=D001,D300 - profiling only\n"
    )
    clean = run_analysis([tmp_path], baseline=None)
    assert [v.rule for v in clean.violations] == []


# ---------------------------------------------------------------------------
# Baseline ledger
# ---------------------------------------------------------------------------
def _write_fixture_tree(tmp_path):
    pkg = tmp_path / "repro"
    (pkg / "parallel").mkdir(parents=True)
    (pkg / "engine").mkdir()
    (pkg / "parallel" / "pool.py").write_text(
        "from repro.engine.runner import run_trace\n"
        "def _execute_spec(spec):\n"
        "    return run_trace(spec)\n"
    )
    (pkg / "engine" / "runner.py").write_text(
        "import time\n"
        "def run_trace(spec):\n"
        "    return time.time()\n"
    )
    return tmp_path


def test_baseline_requires_rationale(tmp_path):
    ledger = tmp_path / "baseline.json"
    ledger.write_text(
        json.dumps(
            {
                "version": 1,
                "entries": [
                    {
                        "rule": "D300",
                        "path": "repro/engine/runner.py",
                        "symbol": "run_trace",
                        "rationale": "   ",
                    }
                ],
            }
        )
    )
    with pytest.raises(BaselineError, match="empty rationale"):
        Baseline.load(ledger)


def test_baseline_suppresses_by_rule_path_symbol(tmp_path):
    tree = _write_fixture_tree(tmp_path)
    ledger = tmp_path / "baseline.json"
    ledger.write_text(
        json.dumps(
            {
                "version": 1,
                "entries": [
                    {
                        "rule": "D300",
                        "path": "repro/engine/runner.py",
                        "symbol": "run_trace",
                        "rationale": "fixture: profiling-only wall clock",
                    },
                    {
                        "rule": "D001",
                        "path": "repro/engine/runner.py",
                        "symbol": "run_trace",
                        "rationale": "fixture: profiling-only wall clock",
                    },
                ],
            }
        )
    )
    report = run_analysis([tree], baseline=Baseline.load(ledger))
    assert report.violations == []
    assert report.baseline_suppressed == 2
    assert report.baseline_unused == []


def test_baseline_reports_unused_entries(tmp_path):
    tree = _write_fixture_tree(tmp_path)
    (tree / "repro" / "engine" / "runner.py").write_text(
        "def run_trace(spec):\n    return spec\n"
    )
    ledger = tmp_path / "baseline.json"
    ledger.write_text(
        json.dumps(
            {
                "version": 1,
                "entries": [
                    {
                        "rule": "D300",
                        "path": "repro/engine/runner.py",
                        "symbol": "run_trace",
                        "rationale": "fixture: stale entry",
                    }
                ],
            }
        )
    )
    report = run_analysis([tree], baseline=Baseline.load(ledger))
    assert report.violations == []
    assert report.baseline_suppressed == 0
    assert report.baseline_unused == [
        {"rule": "D300", "path": "repro/engine/runner.py", "symbol": "run_trace"}
    ]


def test_main_rejects_malformed_baseline(tmp_path, capsys):
    ledger = tmp_path / "baseline.json"
    ledger.write_text("{not json")
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    assert main([str(clean), "--baseline", str(ledger)]) == 2
    assert "baseline" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# Machine-readable report formats
# ---------------------------------------------------------------------------
def test_format_json_round_trip(tmp_path, capsys):
    tree = _write_fixture_tree(tmp_path)
    exit_code = main([str(tree), "--format", "json", "--no-baseline"])
    assert exit_code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["tool"] == "jawslint"
    assert payload["rules"] == dict(sorted(RULES.items()))
    assert payload["timing_s"] >= 0.0
    assert payload["files"] == 2
    found = {(v["rule"], v["symbol"]) for v in payload["violations"]}
    assert ("D300", "run_trace") in found
    assert ("D001", "run_trace") in found
    for violation in payload["violations"]:
        assert set(violation) == {"path", "line", "col", "rule", "symbol", "message"}


def test_format_json_out_file_keeps_text_stdout(tmp_path, capsys):
    tree = _write_fixture_tree(tmp_path)
    out = tmp_path / "report.json"
    exit_code = main(
        [str(tree), "--format", "json", "--out", str(out), "--no-baseline"]
    )
    assert exit_code == 1
    stdout = capsys.readouterr().out
    assert "D300" in stdout and not stdout.lstrip().startswith("{")
    payload = json.loads(out.read_text())
    assert payload["baseline"] is None
    assert len(payload["violations"]) == 2


def test_format_sarif_structure(tmp_path, capsys):
    tree = _write_fixture_tree(tmp_path)
    exit_code = main([str(tree), "--format", "sarif", "--no-baseline"])
    assert exit_code == 1
    sarif = json.loads(capsys.readouterr().out)
    assert sarif["version"] == "2.1.0"
    run = sarif["runs"][0]
    assert run["tool"]["driver"]["name"] == "jawslint"
    assert {r["id"] for r in run["tool"]["driver"]["rules"]} == set(RULES)
    rule_ids = {result["ruleId"] for result in run["results"]}
    assert rule_ids == {"D001", "D300"}
    location = run["results"][0]["locations"][0]["physicalLocation"]
    assert location["region"]["startLine"] >= 1


def test_json_report_records_baseline_stats(tmp_path, capsys):
    tree = _write_fixture_tree(tmp_path)
    ledger = tmp_path / "baseline.json"
    ledger.write_text(
        json.dumps(
            {
                "version": 1,
                "entries": [
                    {
                        "rule": "D300",
                        "path": "repro/engine/runner.py",
                        "symbol": "run_trace",
                        "rationale": "fixture: profiling-only wall clock",
                    },
                    {
                        "rule": "D001",
                        "path": "repro/engine/runner.py",
                        "symbol": "run_trace",
                        "rationale": "fixture: profiling-only wall clock",
                    },
                ],
            }
        )
    )
    exit_code = main(
        [str(tree), "--format", "json", "--baseline", str(ledger)]
    )
    assert exit_code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["violations"] == []
    assert payload["baseline"]["suppressed"] == 2
    assert payload["baseline"]["unused"] == []


# ---------------------------------------------------------------------------
# The tree itself, and the analyzer's runtime budget
# ---------------------------------------------------------------------------
def test_whole_tree_interproc_findings_covered_by_baseline():
    """Every whole-program finding on ``src/repro`` at HEAD is either
    fixed or carries a written rationale in the checked-in ledger —
    and the ledger holds no stale entries."""
    baseline = Baseline.load(REPO_ROOT / "jawslint-baseline.json")
    report = run_analysis([REPO_ROOT / "src" / "repro"], baseline=baseline)
    assert report.violations == [], "\n".join(v.render() for v in report.violations)
    assert report.baseline_unused == []
    assert report.baseline_suppressed > 0  # the ledger is load-bearing


def test_analyzer_runtime_budget():
    """The whole-tree analysis must stay well under the 10 s CI budget;
    ``timing_s`` is recorded in the JSON report so regressions are
    visible in artifacts before they bite."""
    report = run_analysis(
        [REPO_ROOT / "src", REPO_ROOT / "tests"],
        baseline=Baseline.load(REPO_ROOT / "jawslint-baseline.json"),
    )
    assert report.timing_s < 10.0
    assert report.files > 80
