"""Tests for interpolation stencils and neighbor-atom resolution."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grid.atoms import AtomMapper
from repro.grid.dataset import DatasetSpec
from repro.grid.interpolation import (
    InterpolationSpec,
    stencil_atoms,
    subquery_neighbor_atoms,
)

SPEC = DatasetSpec.small(n_timesteps=4, atoms_per_axis=8)
MAPPER = AtomMapper(SPEC)


class TestInterpolationSpec:
    def test_half_width(self):
        assert InterpolationSpec(order=8).half_width == 4
        assert InterpolationSpec(order=12).half_width == 6

    def test_validation(self):
        with pytest.raises(ValueError):
            InterpolationSpec(order=7)
        with pytest.raises(ValueError):
            InterpolationSpec(order=0)


class TestStencilAtoms:
    def test_interior_position_single_atom(self):
        pos = np.array([[32.0, 32.0, 32.0]])  # atom center
        atoms = stencil_atoms(SPEC, pos, 0, InterpolationSpec(order=12))
        assert len(atoms) == 1

    def test_kernel_within_halo_never_expands(self):
        """Order 8 with the production halo of 4 never needs neighbors —
        the design rationale for the 72³ physical atoms (§III-A)."""
        rng = np.random.default_rng(0)
        pos = rng.uniform(0, SPEC.grid_side, (2000, 3))
        interp = InterpolationSpec(order=8)
        atoms = stencil_atoms(SPEC, pos, 0, interp)
        primaries = np.unique(MAPPER.atom_ids(pos, 0))
        np.testing.assert_array_equal(np.sort(atoms), np.sort(primaries))

    def test_face_position_expands_once(self):
        # 0.5 voxels from the x face: order-12 stencil (h=6) exceeds the
        # 4-voxel halo on that side only.
        pos = np.array([[64.5, 32.0, 32.0]])
        atoms = stencil_atoms(SPEC, pos, 0, InterpolationSpec(order=12))
        assert len(atoms) == 2

    def test_corner_position_expands_to_eight(self):
        pos = np.array([[64.5, 64.5, 64.5]])
        atoms = stencil_atoms(SPEC, pos, 0, InterpolationSpec(order=12))
        assert len(atoms) == 8

    def test_periodic_wrap_at_domain_edge(self):
        pos = np.array([[0.5, 32.0, 32.0]])
        atoms = stencil_atoms(SPEC, pos, 0, InterpolationSpec(order=12))
        mortons = sorted(int(a) % SPEC.atoms_per_timestep for a in atoms)
        assert len(atoms) == 2
        # The neighbor is the far-x atom (periodic domain).
        coords = [divmod_coords(m) for m in mortons]
        xs = sorted(c[0] for c in coords)
        assert xs == [0, 7]

    def test_timestep_offset(self):
        pos = np.array([[32.0, 32.0, 32.0]])
        a0 = stencil_atoms(SPEC, pos, 0, InterpolationSpec(order=8))
        a2 = stencil_atoms(SPEC, pos, 2, InterpolationSpec(order=8))
        assert a2[0] - a0[0] == 2 * SPEC.atoms_per_timestep


def divmod_coords(morton: int):
    from repro.morton.codec import morton_decode_scalar

    return morton_decode_scalar(morton)


class TestFastPathEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 2**32 - 1), st.sampled_from([8, 10, 12, 16]))
    def test_matches_generic_stencil(self, seed, order):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 60))
        pos = rng.uniform(0, SPEC.grid_side, (n, 3))
        interp = InterpolationSpec(order=order)
        ts = int(rng.integers(SPEC.n_timesteps))
        for atom_id, idx in MAPPER.group_by_atom(pos, ts):
            fast = set(subquery_neighbor_atoms(SPEC, pos[idx], atom_id, interp))
            slow = set(int(a) for a in stencil_atoms(SPEC, pos[idx], ts, interp))
            assert fast == slow - {atom_id}

    def test_no_neighbors_when_kernel_fits_halo(self):
        rng = np.random.default_rng(1)
        pos = rng.uniform(0, SPEC.grid_side, (100, 3))
        ts = 0
        for atom_id, idx in MAPPER.group_by_atom(pos, ts):
            assert subquery_neighbor_atoms(SPEC, pos[idx], atom_id, InterpolationSpec(order=8)) == []
