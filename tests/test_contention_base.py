"""Tests for the shared contention-scheduler machinery: cache binding,
phi flags, URC utility export."""

import numpy as np

from repro.cache.urc import URCPolicy
from repro.config import CostModel, SchedulerConfig
from repro.core.liferaft import LifeRaftScheduler
from repro.grid.atoms import AtomMapper
from repro.grid.dataset import DatasetSpec
from repro.storage.buffer import BufferCache
from repro.workload.query import Query, preprocess_query

SPEC = DatasetSpec.small(n_timesteps=4, atoms_per_axis=4)
MAPPER = AtomMapper(SPEC)
COST = CostModel(t_b=0.04, t_m=2e-5)


def arrival(scheduler, qid, center, n=20, timestep=0, t=0.0):
    q = Query(qid, qid, 0, 0, "velocity", timestep, np.array([center] * n, dtype=float))
    subs = preprocess_query(q, MAPPER)
    scheduler.on_query_arrival(q, subs, t)
    return q, subs


class TestPhiFlags:
    def test_cached_atom_scheduled_first(self):
        """phi = 0 makes a cached atom's U_t jump to 1/T_m, so the
        scheduler consumes cheap in-memory work before disk work."""
        s = LifeRaftScheduler(SPEC, COST, alpha=0.0)
        cache = BufferCache(8, URCPolicy())
        s.bind_cache(cache)
        # Atom A gets a big queue (uncached); atom B small but cached.
        arrival(s, 0, [32.0, 32.0, 32.0], n=500)
        _, subs_b = arrival(s, 1, [100.0, 32.0, 32.0], n=5)
        cache.access(subs_b[0].atom_id, 0.0)  # B becomes resident
        batch = s.next_batch(1.0)
        assert batch.atoms[0][0] == subs_b[0].atom_id

    def test_eviction_flips_phi_back(self):
        s = LifeRaftScheduler(SPEC, COST, alpha=0.0)
        cache = BufferCache(1, URCPolicy())
        s.bind_cache(cache)
        _, subs_a = arrival(s, 0, [32.0, 32.0, 32.0], n=5)
        _, subs_b = arrival(s, 1, [100.0, 32.0, 32.0], n=500)
        cache.access(subs_a[0].atom_id, 0.0)
        cache.access(subs_b[0].atom_id, 0.0)  # evicts A (capacity 1)
        batch = s.next_batch(1.0)
        assert batch.atoms[0][0] == subs_b[0].atom_id  # B cached now


class TestURCUtilityExport:
    def test_utility_ranks_pending_atoms_higher(self):
        s = LifeRaftScheduler(SPEC, COST, alpha=0.0)
        cache = BufferCache(8, URCPolicy())
        s.bind_cache(cache)
        _, subs = arrival(s, 0, [32.0, 32.0, 32.0], n=100)
        hot = subs[0].atom_id
        idle = SPEC.atom_id(3, 63)
        fn = s.cache_utility_fn()
        assert fn(hot) > fn(idle)
        assert fn(idle) == (0.0, 0.0)

    def test_utility_uses_uncached_cost(self):
        """URC ranks by what re-reading would cost (phi=1), so bigger
        queues rank higher even among cached atoms."""
        s = LifeRaftScheduler(SPEC, COST, alpha=0.0)
        cache = BufferCache(8, URCPolicy())
        s.bind_cache(cache)
        _, subs_small = arrival(s, 0, [32.0, 32.0, 32.0], n=5, timestep=1)
        _, subs_big = arrival(s, 1, [100.0, 32.0, 32.0], n=500, timestep=2)
        fn = s.cache_utility_fn()
        assert fn(subs_big[0].atom_id) > fn(subs_small[0].atom_id)

    def test_urc_evicts_idle_atom_first(self):
        s = LifeRaftScheduler(SPEC, COST, alpha=0.0)
        cache = BufferCache(2, URCPolicy())
        s.bind_cache(cache)
        _, subs = arrival(s, 0, [32.0, 32.0, 32.0], n=100)
        hot = subs[0].atom_id
        idle = SPEC.atom_id(3, 63)
        cache.access(hot, 0.0)
        cache.access(idle, 1.0)
        cache.access(SPEC.atom_id(3, 62), 2.0)  # full: must evict
        assert hot in cache
        assert idle not in cache

    def test_invalidation_on_queue_change(self):
        """New arrivals invalidate URC's memoized ranks."""
        s = LifeRaftScheduler(SPEC, COST, alpha=0.0)
        policy = URCPolicy()
        cache = BufferCache(2, policy)
        s.bind_cache(cache)
        _, subs_a = arrival(s, 0, [32.0, 32.0, 32.0], n=10)
        a = subs_a[0].atom_id
        cache.access(a, 0.0)
        b = SPEC.atom_id(2, 5)
        cache.access(b, 1.0)
        # Now b gains a much bigger queue than a -> must survive the
        # next eviction even though a was more recently ranked.
        from repro.morton.codec import morton_decode_scalar

        bx, by, bz = morton_decode_scalar(5)
        qb = Query(
            10, 10, 0, 0, "velocity", 2,
            np.array([[bx * 64 + 32.0, by * 64 + 32.0, bz * 64 + 32.0]] * 900),
        )
        s.on_query_arrival(qb, preprocess_query(qb, MAPPER), 2.0)
        cache.access(SPEC.atom_id(3, 7), 3.0)  # forces eviction
        assert b in cache  # survived thanks to its new big queue


class TestConfigPlumbing:
    def test_alpha_property(self):
        s = LifeRaftScheduler(SPEC, COST, alpha=0.7)
        assert s.current_alpha == 0.7

    def test_liferaft_overrides_config(self):
        cfg = SchedulerConfig(batch_size=20, two_level=True, adaptive_alpha=True)
        s = LifeRaftScheduler(SPEC, COST, cfg, alpha=0.3)
        assert s.config.batch_size == 1
        assert s.config.two_level is False
        assert s.config.adaptive_alpha is False
        assert s.config.alpha == 0.3
