"""Content-addressed trace cache (``repro.workload.cache``).

A cache hit must be bit-identical to regeneration (queries, times,
positions — and therefore downstream :class:`RunResult`s), corruption
must degrade to regeneration, and the ``REPRO_TRACE_CACHE`` environment
variable must control location and disablement.
"""

import dataclasses

import numpy as np
import pytest

from repro.engine.runner import run_trace
from repro.grid.dataset import DatasetSpec
from repro.workload import cache as cache_module
from repro.workload.cache import (
    cached_generate_trace,
    trace_cache_dir,
    trace_cache_key,
)
from repro.workload.generator import WorkloadParams, generate_trace

SPEC = DatasetSpec.small(n_timesteps=6, atoms_per_axis=4)
PARAMS = WorkloadParams(n_jobs=8, span=60.0, seed=5)


def assert_traces_identical(a, b):
    """Structural bit-identity (floats compared by repr, arrays by bytes)."""
    assert a.spec == b.spec
    assert len(a.jobs) == len(b.jobs)
    for ja, jb in zip(a.jobs, b.jobs):
        assert ja.job_id == jb.job_id
        assert ja.kind == jb.kind
        assert ja.user_id == jb.user_id
        assert repr(ja.submit_time) == repr(jb.submit_time)
        assert repr(ja.think_time) == repr(jb.think_time)
        assert ja.client_class == jb.client_class
        assert len(ja.queries) == len(jb.queries)
        for qa, qb in zip(ja.queries, jb.queries):
            assert (qa.query_id, qa.job_id, qa.seq, qa.user_id, qa.op) == (
                qb.query_id,
                qb.job_id,
                qb.seq,
                qb.user_id,
                qb.op,
            )
            assert qa.timestep == qb.timestep
            assert qa.positions.dtype == qb.positions.dtype
            assert qa.positions.tobytes() == qb.positions.tobytes()


def cache_files(directory):
    return sorted(p for p in directory.glob("trace-v*.npz"))


# ---------------------------------------------------------------------------
# Hit path: bit-identity with regeneration
# ---------------------------------------------------------------------------
def test_miss_then_hit_is_bit_identical(tmp_path, monkeypatch):
    first = cached_generate_trace(SPEC, PARAMS, cache_dir=tmp_path)
    assert len(cache_files(tmp_path)) == 1

    # Any regeneration on the second call would be a bug: detonate it.
    def bomb(*args, **kwargs):
        raise AssertionError("cache miss on what must be a hit")

    monkeypatch.setattr(cache_module, "generate_trace", bomb)
    second = cached_generate_trace(SPEC, PARAMS, cache_dir=tmp_path)
    assert_traces_identical(first, second)
    assert_traces_identical(first, generate_trace(SPEC, PARAMS))


def test_cached_trace_produces_identical_run(tmp_path):
    cached_generate_trace(SPEC, PARAMS, cache_dir=tmp_path)  # warm
    hit = cached_generate_trace(SPEC, PARAMS, cache_dir=tmp_path)
    fresh = generate_trace(SPEC, PARAMS)
    a = run_trace(hit, "jaws2").to_dict()
    b = run_trace(fresh, "jaws2").to_dict()
    for key in ("gating_overhead_ns", "cache_overhead_ns"):
        a.pop(key), b.pop(key)
    a["cache"].pop("overhead_ns"), b["cache"].pop("overhead_ns")
    assert a == b


def test_speedup_applied_on_both_paths(tmp_path):
    miss = cached_generate_trace(SPEC, PARAMS, speedup=4.0, cache_dir=tmp_path)
    hit = cached_generate_trace(SPEC, PARAMS, speedup=4.0, cache_dir=tmp_path)
    assert_traces_identical(miss, hit)
    assert_traces_identical(miss, generate_trace(SPEC, PARAMS).rescale(4.0))


# ---------------------------------------------------------------------------
# Key sensitivity
# ---------------------------------------------------------------------------
def test_key_depends_on_all_inputs():
    base = trace_cache_key(SPEC, PARAMS, 1.0)
    assert trace_cache_key(SPEC, PARAMS, 1.0) == base  # stable
    assert trace_cache_key(SPEC, dataclasses.replace(PARAMS, seed=6), 1.0) != base
    assert trace_cache_key(SPEC, dataclasses.replace(PARAMS, n_jobs=9), 1.0) != base
    assert trace_cache_key(SPEC, PARAMS, 2.0) != base
    other_spec = DatasetSpec.small(n_timesteps=7, atoms_per_axis=4)
    assert trace_cache_key(other_spec, PARAMS, 1.0) != base


def test_distinct_inputs_get_distinct_files(tmp_path):
    cached_generate_trace(SPEC, PARAMS, cache_dir=tmp_path)
    cached_generate_trace(
        SPEC, dataclasses.replace(PARAMS, seed=6), cache_dir=tmp_path
    )
    cached_generate_trace(SPEC, PARAMS, speedup=2.0, cache_dir=tmp_path)
    assert len(cache_files(tmp_path)) == 3


# ---------------------------------------------------------------------------
# Corruption and mismatch safety
# ---------------------------------------------------------------------------
def test_corrupt_entry_regenerates_and_heals(tmp_path):
    cached_generate_trace(SPEC, PARAMS, cache_dir=tmp_path)
    (path,) = cache_files(tmp_path)
    path.write_bytes(b"not an npz archive at all")
    recovered = cached_generate_trace(SPEC, PARAMS, cache_dir=tmp_path)
    assert_traces_identical(recovered, generate_trace(SPEC, PARAMS))
    # The corrupt file was replaced by a fresh, loadable entry.
    (healed,) = cache_files(tmp_path)
    assert healed == path
    assert cache_module.Trace.load(healed).n_queries == recovered.n_queries


def test_truncated_entry_regenerates(tmp_path):
    cached_generate_trace(SPEC, PARAMS, cache_dir=tmp_path)
    (path,) = cache_files(tmp_path)
    path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
    recovered = cached_generate_trace(SPEC, PARAMS, cache_dir=tmp_path)
    assert_traces_identical(recovered, generate_trace(SPEC, PARAMS))


def test_spec_mismatch_regenerates(tmp_path):
    """A stale file under the right name (hash collision, copied cache)
    is detected by the embedded spec and regenerated past."""
    other_spec = DatasetSpec.small(n_timesteps=7, atoms_per_axis=4)
    decoy = generate_trace(other_spec, PARAMS)
    key = trace_cache_key(SPEC, PARAMS, 1.0)
    target = tmp_path / f"trace-v{cache_module._FORMAT_VERSION}-{key}.npz"
    decoy.save(target)
    got = cached_generate_trace(SPEC, PARAMS, cache_dir=tmp_path)
    assert got.spec == SPEC
    assert_traces_identical(got, generate_trace(SPEC, PARAMS))


def test_unwritable_cache_degrades_to_regeneration(tmp_path):
    blocker = tmp_path / "blocker"
    blocker.write_text("a file where the cache dir should be")
    with pytest.warns(RuntimeWarning, match="continuing without caching"):
        trace = cached_generate_trace(SPEC, PARAMS, cache_dir=blocker / "traces")
    assert_traces_identical(trace, generate_trace(SPEC, PARAMS))


def test_replace_failure_warns_and_cleans_up(tmp_path, monkeypatch):
    """A failing os.replace (read-only dir discovered at publish time)
    degrades to uncached generation with a warning — and leaves neither
    the temp file nor a stale entry behind to poison later lookups."""
    real_replace = cache_module.os.replace

    def broken_replace(src, dst):
        raise OSError(30, "Read-only file system", str(dst))

    monkeypatch.setattr(cache_module.os, "replace", broken_replace)
    with pytest.warns(RuntimeWarning, match="continuing without caching"):
        trace = cached_generate_trace(SPEC, PARAMS, cache_dir=tmp_path)
    assert_traces_identical(trace, generate_trace(SPEC, PARAMS))
    assert not list(tmp_path.glob(".tmp-*"))
    assert not cache_files(tmp_path)

    # The cache stays usable once the filesystem recovers.
    monkeypatch.setattr(cache_module.os, "replace", real_replace)
    healed = cached_generate_trace(SPEC, PARAMS, cache_dir=tmp_path)
    assert_traces_identical(healed, trace)
    assert len(cache_files(tmp_path)) == 1


def test_replace_failure_unlinks_stale_entry(tmp_path, monkeypatch):
    """When a stale unreadable entry occupies the target name AND the
    atomic publish fails, the defensive unlink removes the stale file so
    later lookups regenerate instead of re-reading garbage."""
    key = trace_cache_key(SPEC, PARAMS, 1.0)
    target = tmp_path / f"trace-v{cache_module._FORMAT_VERSION}-{key}.npz"
    target.write_bytes(b"garbage that Trace.load rejects")

    def broken_replace(src, dst):
        raise OSError(28, "No space left on device", str(dst))

    monkeypatch.setattr(cache_module.os, "replace", broken_replace)
    with pytest.warns(RuntimeWarning, match="continuing without caching"):
        trace = cached_generate_trace(SPEC, PARAMS, cache_dir=tmp_path)
    assert_traces_identical(trace, generate_trace(SPEC, PARAMS))
    assert not target.exists()
    assert not list(tmp_path.glob(".tmp-*"))


# ---------------------------------------------------------------------------
# Environment control
# ---------------------------------------------------------------------------
def test_env_unset_uses_default_dir(monkeypatch):
    monkeypatch.delenv("REPRO_TRACE_CACHE", raising=False)
    assert trace_cache_dir() is not None
    assert trace_cache_dir().parts[-2:] == (".repro_cache", "traces")


@pytest.mark.parametrize("value", ["off", "OFF", "0", "none", " disabled "])
def test_env_disables_cache(monkeypatch, value):
    monkeypatch.setenv("REPRO_TRACE_CACHE", value)
    assert trace_cache_dir() is None


def test_env_overrides_location(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "elsewhere"))
    assert trace_cache_dir() == tmp_path / "elsewhere"
    cached_generate_trace(SPEC, PARAMS)
    assert len(cache_files(tmp_path / "elsewhere")) == 1


def test_disabled_cache_writes_nothing(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_TRACE_CACHE", "off")
    monkeypatch.chdir(tmp_path)
    trace = cached_generate_trace(SPEC, PARAMS)
    assert_traces_identical(trace, generate_trace(SPEC, PARAMS))
    assert not list(tmp_path.rglob("*.npz"))


def test_no_temp_files_left_behind(tmp_path):
    cached_generate_trace(SPEC, PARAMS, cache_dir=tmp_path)
    assert not list(tmp_path.glob(".tmp-*"))
