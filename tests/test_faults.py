"""Fault injection, retry/backoff, node failover and query deadlines.

The load-bearing properties:

* **zero-fault equivalence** — a disabled ``FaultConfig`` leaves every
  result bit-identical to a run with no fault config at all;
* **determinism** — same trace + seed + ``FaultConfig`` ⇒ identical
  results, for any fault mix;
* **conservation** — under any fault schedule every query is accounted
  for exactly once: ``trace.n_queries == completed + cancelled(arrived)
  + aborted(unarrived)``, and all workload queues drain.
"""

import numpy as np
import pytest

from repro.config import CacheConfig, CostModel, EngineConfig, FaultConfig
from repro.cluster.cluster import run_cluster
from repro.core.base import Scheduler
from repro.engine.runner import make_scheduler, run_trace
from repro.engine.simulator import Simulator
from repro.errors import LivelockError, SimTimeExceededError, SimulationError
from repro.grid.dataset import DatasetSpec
from repro.storage.disk import DiskModel
from repro.workload.generator import WorkloadParams, generate_trace

SPEC = DatasetSpec.small(n_timesteps=6, atoms_per_axis=4)


def small_trace(seed=0, n_jobs=15):
    return generate_trace(SPEC, WorkloadParams(n_jobs=n_jobs, span=120.0, seed=seed))


def engine(**kwargs):
    return EngineConfig(
        cost=CostModel(t_b=0.02, t_m=1e-5),
        cache=CacheConfig(capacity_atoms=32),
        run_length=10,
        **kwargs,
    )


def assert_conserved(trace, result):
    """Every query ends in exactly one bucket; nothing is queued."""
    unarrived = result.faults.get("aborted_unarrived_queries", 0)
    assert trace.n_queries == result.n_queries + result.cancelled_queries + unarrived


class TestFaultConfig:
    def test_default_is_disabled(self):
        assert not FaultConfig().enabled

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"transient_fault_rate": 0.1},
            {"permanent_loss_rate": 0.01},
            {"slow_read_rate": 0.2},
            {"node_crashes": ((0, 1.0, 2.0),)},
            {"query_deadline": 30.0},
        ],
    )
    def test_any_fault_source_enables(self, kwargs):
        assert FaultConfig(**kwargs).enabled

    def test_replication_alone_does_not_enable(self):
        assert not FaultConfig(replication=3).enabled

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"transient_fault_rate": 1.5},
            {"permanent_loss_rate": -0.1},
            {"slow_read_factor": 0.5},
            {"max_retries": -1},
            {"backoff_factor": 0.9},
            {"backoff_jitter": 2.0},
            {"circuit_breaker_threshold": 0},
            {"query_deadline": 0.0},
            {"replication": 0},
            {"node_crashes": ((0, 5.0, 2.0),)},
            {"node_crashes": ((0, 1.0),)},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            FaultConfig(**kwargs)

    def test_crash_schedule_normalized_to_tuples(self):
        cfg = FaultConfig(node_crashes=[[1, 2.0, 3.0]])
        assert cfg.node_crashes == ((1, 2.0, 3.0),)


class TestZeroFaultEquivalence:
    @pytest.mark.parametrize("name", ("noshare", "liferaft2", "jaws2"))
    def test_disabled_config_changes_nothing(self, name):
        trace = small_trace(seed=5)
        base = run_trace(trace, name, engine())
        explicit = run_trace(trace, name, engine(), faults=FaultConfig())
        assert base.makespan == explicit.makespan
        np.testing.assert_array_equal(base.response_times, explicit.response_times)
        assert base.disk == explicit.disk
        # overhead_ns is measured wall-clock time, not simulated state.
        drop = lambda d: {k: v for k, v in d.items() if k != "overhead_ns"}  # noqa: E731
        assert drop(base.cache) == drop(explicit.cache)
        assert explicit.retries == 0 and explicit.failovers == 0
        assert explicit.faults.get("transient_faults", 0) == 0

    def test_zero_fault_invariants_still_hold(self):
        eng = engine()
        result = run_trace(small_trace(seed=7), "noshare", eng, faults=FaultConfig())
        assert result.cache["misses"] == result.disk["reads"]
        assert result.disk["seconds"] == pytest.approx(result.disk["reads"] * eng.cost.t_b)


class TestTransientFaults:
    def test_retries_happen_and_everything_completes(self):
        trace = small_trace(seed=1)
        result = run_trace(
            trace, "jaws2", engine(), faults=FaultConfig(seed=3, transient_fault_rate=0.05)
        )
        assert result.n_queries == trace.n_queries
        assert result.retries > 0
        assert result.faults["transient_faults"] > 0
        assert result.availability == 1.0
        assert_conserved(trace, result)

    def test_faults_cost_virtual_time(self):
        trace = small_trace(seed=1)
        clean = run_trace(trace, "liferaft2", engine())
        faulty = run_trace(
            trace, "liferaft2", engine(), faults=FaultConfig(seed=3, transient_fault_rate=0.1)
        )
        # Failed attempts charge disk time and backoff, so total disk
        # seconds strictly exceed the clean run's.
        assert faulty.disk["seconds"] > clean.disk["seconds"]
        assert faulty.disk["failed_reads"] > 0

    def test_slow_reads_counted_and_charged(self):
        trace = small_trace(seed=2)
        clean = run_trace(trace, "liferaft2", engine())
        slow = run_trace(
            trace,
            "liferaft2",
            engine(),
            faults=FaultConfig(seed=3, slow_read_rate=0.3, slow_read_factor=5.0),
        )
        assert slow.faults["slow_reads"] > 0
        assert slow.disk["seconds"] > clean.disk["seconds"]
        assert slow.n_queries == trace.n_queries

    def test_circuit_breaker_degrades_disk(self):
        trace = small_trace(seed=2)
        result = run_trace(
            trace,
            "liferaft2",
            engine(),
            faults=FaultConfig(
                seed=3,
                transient_fault_rate=0.6,
                max_retries=8,
                circuit_breaker_threshold=2,
                backoff_base=1e-4,
            ),
        )
        assert result.faults["degraded_nodes"] == 1
        assert result.n_queries == trace.n_queries

    def test_exhausted_retries_requeue_not_livelock(self):
        trace = small_trace(seed=4, n_jobs=8)
        result = run_trace(
            trace,
            "liferaft2",
            engine(),
            faults=FaultConfig(seed=9, transient_fault_rate=0.3, max_retries=0),
        )
        # Every transient failure abandons the read immediately and the
        # sub-query re-enters the queue for a fresh attempt.
        assert result.faults["retries_exhausted"] > 0
        assert result.faults["requeued_subqueries"] > 0
        assert result.n_queries == trace.n_queries


class TestDeterminism:
    @pytest.mark.parametrize("name", ("noshare", "liferaft2", "jaws2"))
    def test_same_seed_same_result(self, name):
        trace = small_trace(seed=5)
        faults = FaultConfig(
            seed=11,
            transient_fault_rate=0.08,
            slow_read_rate=0.05,
            permanent_loss_rate=0.002,
            replication=2,
            node_crashes=((1, 3.0, 20.0),),
        )
        runs = [
            run_cluster(trace, name, 4, engine=engine(), faults=faults).result
            for _ in range(2)
        ]
        assert runs[0].makespan == runs[1].makespan
        np.testing.assert_array_equal(runs[0].response_times, runs[1].response_times)
        assert runs[0].faults == runs[1].faults
        assert runs[0].retries == runs[1].retries
        assert runs[0].failovers == runs[1].failovers

    def test_different_seed_different_faults(self):
        trace = small_trace(seed=5)
        a = run_trace(
            trace, "liferaft2", engine(), faults=FaultConfig(seed=1, transient_fault_rate=0.05)
        )
        b = run_trace(
            trace, "liferaft2", engine(), faults=FaultConfig(seed=2, transient_fault_rate=0.05)
        )
        assert a.faults["transient_faults"] != b.faults["transient_faults"]


class TestConservation:
    @pytest.mark.parametrize("name", ("noshare", "liferaft2", "jaws2"))
    @pytest.mark.parametrize("seed", (0, 1))
    def test_conserved_under_mixed_faults(self, name, seed):
        trace = small_trace(seed=seed, n_jobs=12)
        faults = FaultConfig(
            seed=seed + 40,
            transient_fault_rate=0.05,
            permanent_loss_rate=0.005,
            replication=2,
            query_deadline=25.0,
            node_crashes=((0, 2.0, 10.0),),
        )
        eng = engine()
        schedulers = [make_scheduler(name, trace, eng) for _ in range(3)]
        from repro.cluster.partition import MortonRangePartitioner

        part = MortonRangePartitioner(trace.spec, 3, replication=2)
        sim = Simulator(
            trace,
            schedulers,
            eng.with_(faults=faults),
            node_of=part.node_of,
            replicas_of=part.replicas_of,
        )
        result = sim.run()
        assert_conserved(trace, result)
        assert all(n.scheduler.queue_depth() == 0 for n in sim.nodes)
        assert all(not n.busy for n in sim.nodes)

    def test_data_loss_without_replicas_cancels(self):
        trace = small_trace(seed=3)
        result = run_trace(
            trace,
            "liferaft2",
            engine(),
            faults=FaultConfig(seed=21, permanent_loss_rate=0.05),
        )
        assert result.faults["data_loss_cancels"] > 0
        assert result.cancelled_queries > 0
        assert result.availability < 1.0
        assert_conserved(trace, result)


class TestFailover:
    def test_crash_fails_over_to_replicas(self):
        trace = small_trace(seed=5, n_jobs=20)
        faults = FaultConfig(seed=7, replication=2, node_crashes=((1, 1.0, 40.0),))
        out = run_cluster(trace, "jaws2", 4, engine=engine(), faults=faults)
        result = out.result
        assert result.failovers > 0
        assert result.faults["node_downs"] == 1
        assert result.availability >= 0.9
        assert_conserved(trace, result)

    def test_crash_without_replicas_defers_until_recovery(self):
        trace = small_trace(seed=5, n_jobs=20)
        faults = FaultConfig(seed=7, node_crashes=((1, 1.0, 40.0),))
        out = run_cluster(trace, "jaws2", 4, engine=engine(), faults=faults)
        result = out.result
        # replication=1: the downed node's work has nowhere to go and
        # parks until the node recovers.
        assert result.faults["deferred_subqueries"] > 0
        assert result.n_queries == trace.n_queries

    def test_outage_past_sim_bound_raises(self):
        # A node down until far past max_sim_time: its deferred work
        # waits for the recovery, and the clock bound trips first.
        trace = small_trace(seed=5, n_jobs=5)
        faults = FaultConfig(seed=7, node_crashes=((0, 0.5, 1e8),))
        eng = engine(max_sim_time=1e6).with_(faults=faults)
        schedulers = [make_scheduler("liferaft2", trace, eng) for _ in range(2)]
        from repro.cluster.partition import MortonRangePartitioner

        part = MortonRangePartitioner(trace.spec, 2)
        sim = Simulator(trace, schedulers, eng, node_of=part.node_of)
        with pytest.raises(SimTimeExceededError, match="max_sim_time") as exc:
            sim.run()
        assert exc.value.pending_queries  # the deferred work is visible

    def test_crash_schedule_bounds_checked(self):
        trace = small_trace(seed=5, n_jobs=5)
        eng = engine().with_(faults=FaultConfig(node_crashes=((7, 1.0, 2.0),)))
        with pytest.raises(ValueError, match="names node 7"):
            Simulator(trace, [make_scheduler("noshare", trace, eng)], eng)


class TestDeadlines:
    def test_overdue_queries_cancel_and_jobs_abort(self):
        trace = small_trace(seed=6, n_jobs=20)
        faults = FaultConfig(seed=13, query_deadline=0.4)
        result = run_trace(trace, "jaws2", engine(), faults=faults)
        assert result.timeouts > 0
        assert result.cancelled_queries >= result.timeouts
        assert_conserved(trace, result)

    def test_generous_deadline_changes_nothing(self):
        trace = small_trace(seed=6)
        clean = run_trace(trace, "jaws2", engine())
        bounded = run_trace(
            trace, "jaws2", engine(), faults=FaultConfig(query_deadline=1e6)
        )
        assert bounded.timeouts == 0
        assert bounded.n_queries == trace.n_queries
        np.testing.assert_array_equal(clean.response_times, bounded.response_times)

    def test_ordered_job_tail_aborts(self):
        trace = small_trace(seed=6, n_jobs=20)
        result = run_trace(
            trace, "liferaft2", engine(), faults=FaultConfig(query_deadline=0.4)
        )
        if result.aborted_jobs:
            assert result.faults["aborted_unarrived_queries"] > 0
        assert_conserved(trace, result)


class TestAcceptanceScenario:
    def test_four_node_cluster_with_faults_and_crash(self):
        """The issue's bar: 4 nodes, <=5% transient faults, one
        mid-trace crash/recovery — jaws2 completes, retries and
        failovers are visible, availability >= 0.9."""
        trace = small_trace(seed=5, n_jobs=25)
        faults = FaultConfig(
            seed=17,
            transient_fault_rate=0.05,
            replication=2,
            node_crashes=((2, 2.0, 30.0),),
        )
        out = run_cluster(trace, "jaws2", 4, engine=engine(), faults=faults)
        result = out.result
        assert result.retries > 0
        assert result.failovers > 0
        assert result.availability >= 0.9
        assert_conserved(trace, result)


class TestDiskResetLocality:
    def test_reset_breaks_sequential_discount(self):
        cost = CostModel(t_b=0.02, seq_discount=0.5)
        disk = DiskModel(cost, n_atoms=16)
        disk.read_atom(3)
        assert disk.read_atom(4) == pytest.approx(cost.t_b * cost.seq_discount)
        disk.reset_locality()
        assert disk.read_atom(5) == pytest.approx(cost.t_b)

    def test_failed_read_resets_locality_and_counts(self):
        cost = CostModel(t_b=0.02, seq_discount=0.5)
        disk = DiskModel(cost, n_atoms=16)
        disk.read_atom(3)
        penalty = disk.failed_read(4)
        assert penalty == pytest.approx(cost.t_b)
        assert disk.stats.failed_reads == 1
        assert disk.read_atom(4) == pytest.approx(cost.t_b)  # discount gone

    def test_degrade_is_sticky_and_monotone(self):
        cost = CostModel(t_b=0.02)
        disk = DiskModel(cost, n_atoms=16)
        disk.degrade(2.0)
        disk.degrade(1.5)  # weaker request never un-degrades
        assert disk.read_atom(0) == pytest.approx(cost.t_b * 2.0)


class _StuckScheduler(Scheduler):
    """Claims pending work but never yields a batch (livelock probe)."""

    name = "stuck"

    def on_query_arrival(self, query, subqueries, now):
        self._stash = subqueries

    def next_batch(self, now):
        return None

    def has_pending(self):
        return True

    def queue_depth(self):
        return 99


class TestTypedErrors:
    def test_sim_time_exceeded_carries_state(self):
        eng = engine(max_sim_time=1.0)
        with pytest.raises(SimTimeExceededError, match="max_sim_time") as exc:
            run_trace(small_trace(seed=1), "noshare", eng)
        err = exc.value
        assert isinstance(err, SimulationError)
        assert isinstance(err, RuntimeError)  # legacy catch sites still work
        assert err.clock > 1.0
        assert isinstance(err.pending_queries, list)
        assert err.queue_depths == [0] or err.queue_depths[0] >= 0
        assert len(err.busy_flags) == 1

    def test_livelock_carries_state(self):
        trace = small_trace(seed=1, n_jobs=3)
        sim = Simulator(trace, [_StuckScheduler()], engine())
        with pytest.raises(LivelockError, match="livelock") as exc:
            sim.run()
        assert exc.value.queue_depths == [99]
        assert exc.value.pending_queries

    def test_message_mentions_pending_ids(self):
        trace = small_trace(seed=1, n_jobs=3)
        sim = Simulator(trace, [_StuckScheduler()], engine())
        with pytest.raises(LivelockError, match=r"pending"):
            sim.run()


class TestAlphaHistories:
    def test_per_node_histories_collected(self):
        trace = small_trace(seed=9, n_jobs=20)
        out = run_cluster(trace, "jaws2", 2, engine=engine())
        result = out.result
        assert len(result.alpha_histories) == 2
        assert result.alpha_history == result.alpha_histories[0]
        # Nodes adapt independently: each history matches the runs.
        for history in result.alpha_histories:
            assert len(history) == len(result.runs)

    def test_single_node_shape_unchanged(self):
        result = run_trace(small_trace(seed=9, n_jobs=20), "jaws2", engine())
        assert result.alpha_histories == [result.alpha_history]
