"""Tests for the per-atom workload queues."""

import numpy as np
import pytest

from repro.core.queues import WorkloadQueues
from repro.grid.atoms import AtomMapper
from repro.grid.dataset import DatasetSpec
from repro.workload.query import Query, preprocess_query

SPEC = DatasetSpec.small(n_timesteps=4, atoms_per_axis=4)
MAPPER = AtomMapper(SPEC)


def make_subqueries(n_positions=50, timestep=0, seed=0, qid=0):
    rng = np.random.default_rng(seed)
    q = Query(
        query_id=qid,
        job_id=qid,
        seq=0,
        user_id=0,
        op="velocity",
        timestep=timestep,
        positions=rng.uniform(0, SPEC.grid_side, (n_positions, 3)),
    )
    return preprocess_query(q, MAPPER)


class TestAddPop:
    def test_counts_aggregate(self):
        queues = WorkloadQueues(SPEC.atoms_per_timestep)
        subs = make_subqueries(100)
        for sq in subs:
            queues.add(sq, now=1.0)
        assert queues.total_positions == 100
        assert len(queues) == len({sq.atom_id for sq in subs})

    def test_pop_returns_all_subqueries(self):
        queues = WorkloadQueues(SPEC.atoms_per_timestep)
        subs = make_subqueries(200, seed=1)
        for sq in subs:
            queues.add(sq, now=0.0)
        atom = subs[0].atom_id
        drained = queues.pop_atom(atom)
        assert all(sq.atom_id == atom for sq in drained)
        assert atom not in queues
        assert queues.total_positions == 200 - sum(sq.n_positions for sq in drained)

    def test_pop_missing_raises(self):
        queues = WorkloadQueues(SPEC.atoms_per_timestep)
        with pytest.raises(KeyError):
            queues.pop_atom(42)

    def test_slot_recycling(self):
        queues = WorkloadQueues(SPEC.atoms_per_timestep)
        subs = make_subqueries(30, seed=2)
        for cycle in range(3):
            for sq in subs:
                queues.add(sq, now=float(cycle))
            for atom in sorted({sq.atom_id for sq in subs}):
                queues.pop_atom(atom)
        assert len(queues) == 0
        assert queues.total_positions == 0

    def test_oldest_arrival_preserved_across_adds(self):
        queues = WorkloadQueues(SPEC.atoms_per_timestep)
        subs = make_subqueries(20, seed=3)
        atom = subs[0].atom_id
        queues.add(subs[0], now=1.0)
        queues.add(subs[0], now=9.0)  # later arrival must not reset age
        assert queues.oldest_arrival(atom) == 1.0


class TestViews:
    def test_active_view_parallel_arrays(self):
        queues = WorkloadQueues(SPEC.atoms_per_timestep)
        for sq in make_subqueries(120, seed=4):
            queues.add(sq, now=2.0)
        ids, counts, oldest, cached = queues.active_view()
        assert len(ids) == len(queues)
        assert counts.sum() == 120
        assert (oldest == 2.0).all()
        assert not cached.any()

    def test_empty_view(self):
        queues = WorkloadQueues(SPEC.atoms_per_timestep)
        ids, counts, oldest, cached = queues.active_view()
        assert len(ids) == len(counts) == len(oldest) == len(cached) == 0

    def test_timesteps_of(self):
        queues = WorkloadQueues(SPEC.atoms_per_timestep)
        ids = np.array([0, SPEC.atoms_per_timestep + 3, 2 * SPEC.atoms_per_timestep])
        np.testing.assert_array_equal(queues.timesteps_of(ids), [0, 1, 2])


class TestCacheFlags:
    def test_flags_follow_listeners(self):
        queues = WorkloadQueues(SPEC.atoms_per_timestep)
        subs = make_subqueries(40, seed=5)
        atom = subs[0].atom_id
        queues.on_cache_insert(atom)  # cached before any queue entry
        for sq in subs:
            queues.add(sq, now=0.0)
        ids, _, _, cached = queues.active_view()
        assert cached[list(ids).index(atom)]
        queues.on_cache_evict(atom)
        ids, _, _, cached = queues.active_view()
        assert not cached[list(ids).index(atom)]

    def test_growth_beyond_initial_slot_block(self):
        """The slot arrays grow in blocks of 256; exercise crossing it
        (the 4-step x 64-atom spec has exactly 256 distinct atoms)."""
        queues = WorkloadQueues(SPEC.atoms_per_timestep)
        made = 0
        for seed in range(40):
            for sq in make_subqueries(60, timestep=seed % 4, seed=seed, qid=seed):
                queues.add(sq, now=0.0)
                made += sq.n_positions
        assert queues.total_positions == made
        ids, counts, _, _ = queues.active_view()
        assert counts.sum() == made
        assert len(ids) <= 256
