"""Tests for the per-atom workload queues."""

import numpy as np
import pytest

from repro.core.queues import WorkloadQueues
from repro.grid.atoms import AtomMapper
from repro.grid.dataset import DatasetSpec
from repro.workload.query import Query, preprocess_query

SPEC = DatasetSpec.small(n_timesteps=4, atoms_per_axis=4)
MAPPER = AtomMapper(SPEC)


def make_subqueries(n_positions=50, timestep=0, seed=0, qid=0):
    rng = np.random.default_rng(seed)
    q = Query(
        query_id=qid,
        job_id=qid,
        seq=0,
        user_id=0,
        op="velocity",
        timestep=timestep,
        positions=rng.uniform(0, SPEC.grid_side, (n_positions, 3)),
    )
    return preprocess_query(q, MAPPER)


class TestAddPop:
    def test_counts_aggregate(self):
        queues = WorkloadQueues(SPEC.atoms_per_timestep)
        subs = make_subqueries(100)
        for sq in subs:
            queues.add(sq, now=1.0)
        assert queues.total_positions == 100
        assert len(queues) == len({sq.atom_id for sq in subs})

    def test_pop_returns_all_subqueries(self):
        queues = WorkloadQueues(SPEC.atoms_per_timestep)
        subs = make_subqueries(200, seed=1)
        for sq in subs:
            queues.add(sq, now=0.0)
        atom = subs[0].atom_id
        drained = queues.pop_atom(atom)
        assert all(sq.atom_id == atom for sq in drained)
        assert atom not in queues
        assert queues.total_positions == 200 - sum(sq.n_positions for sq in drained)

    def test_pop_missing_raises(self):
        queues = WorkloadQueues(SPEC.atoms_per_timestep)
        with pytest.raises(KeyError):
            queues.pop_atom(42)

    def test_slot_recycling(self):
        queues = WorkloadQueues(SPEC.atoms_per_timestep)
        subs = make_subqueries(30, seed=2)
        for cycle in range(3):
            for sq in subs:
                queues.add(sq, now=float(cycle))
            for atom in sorted({sq.atom_id for sq in subs}):
                queues.pop_atom(atom)
        assert len(queues) == 0
        assert queues.total_positions == 0

    def test_oldest_arrival_preserved_across_adds(self):
        queues = WorkloadQueues(SPEC.atoms_per_timestep)
        subs = make_subqueries(20, seed=3)
        atom = subs[0].atom_id
        queues.add(subs[0], now=1.0)
        queues.add(subs[0], now=9.0)  # later arrival must not reset age
        assert queues.oldest_arrival(atom) == 1.0


class TestViews:
    def test_active_view_parallel_arrays(self):
        queues = WorkloadQueues(SPEC.atoms_per_timestep)
        for sq in make_subqueries(120, seed=4):
            queues.add(sq, now=2.0)
        ids, counts, oldest, cached = queues.active_view()
        assert len(ids) == len(queues)
        assert counts.sum() == 120
        assert (oldest == 2.0).all()
        assert not cached.any()

    def test_empty_view(self):
        queues = WorkloadQueues(SPEC.atoms_per_timestep)
        ids, counts, oldest, cached = queues.active_view()
        assert len(ids) == len(counts) == len(oldest) == len(cached) == 0

    def test_timesteps_of(self):
        queues = WorkloadQueues(SPEC.atoms_per_timestep)
        ids = np.array([0, SPEC.atoms_per_timestep + 3, 2 * SPEC.atoms_per_timestep])
        np.testing.assert_array_equal(queues.timesteps_of(ids), [0, 1, 2])


class TestCacheFlags:
    def test_flags_follow_listeners(self):
        queues = WorkloadQueues(SPEC.atoms_per_timestep)
        subs = make_subqueries(40, seed=5)
        atom = subs[0].atom_id
        queues.on_cache_insert(atom)  # cached before any queue entry
        for sq in subs:
            queues.add(sq, now=0.0)
        ids, _, _, cached = queues.active_view()
        assert cached[list(ids).index(atom)]
        queues.on_cache_evict(atom)
        ids, _, _, cached = queues.active_view()
        assert not cached[list(ids).index(atom)]

    def test_growth_beyond_initial_slot_block(self):
        """The slot arrays start at 256 slots and double when full;
        exercise crossing the initial capacity (the 4-step x 64-atom
        spec has exactly 256 distinct atoms)."""
        queues = WorkloadQueues(SPEC.atoms_per_timestep)
        made = 0
        for seed in range(40):
            for sq in make_subqueries(60, timestep=seed % 4, seed=seed, qid=seed):
                queues.add(sq, now=0.0)
                made += sq.n_positions
        assert queues.total_positions == made
        ids, counts, _, _ = queues.active_view()
        assert counts.sum() == made
        assert len(ids) <= 256


class TestGrowth:
    def test_capacity_doubles_geometrically(self):
        queues = WorkloadQueues(atoms_per_timestep=1 << 20)
        assert len(queues._atom_ids) == 256
        sq = make_subqueries(5, qid=0)[0]
        for atom in range(300):  # force one doubling past 256
            clone = type(sq)(
                query=sq.query, atom_id=atom, position_indices=sq.position_indices
            )
            queues.add(clone, now=0.0)
        assert len(queues._atom_ids) == 512
        assert len(queues._subqueries) == 512
        assert len(queues._arrivals) == 512
        assert queues.check_consistency() == []

    def test_capacity_hint_preallocates(self):
        queues = WorkloadQueues(atoms_per_timestep=4096, capacity_hint=1000)
        assert len(queues._atom_ids) == 1024  # next power of two >= hint
        assert WorkloadQueues(4096, capacity_hint=0)._atom_ids.shape == (256,)


class TestVersionedView:
    def test_view_memoized_between_mutations(self):
        queues = WorkloadQueues(SPEC.atoms_per_timestep)
        for sq in make_subqueries(50, seed=6):
            queues.add(sq, now=1.0)
        first = queues.active_view()
        assert queues.active_view() is first  # no mutation: same snapshot
        queues.add(make_subqueries(10, seed=7, qid=1)[0], now=2.0)
        assert queues.active_view() is not first

    def test_view_arrays_read_only(self):
        queues = WorkloadQueues(SPEC.atoms_per_timestep)
        for sq in make_subqueries(30, seed=8):
            queues.add(sq, now=0.0)
        for arr in queues.active_view():
            with pytest.raises(ValueError):
                arr[0] = 0

    def test_version_bumps_on_every_mutation(self):
        queues = WorkloadQueues(SPEC.atoms_per_timestep)
        subs = make_subqueries(30, seed=9, qid=3)
        v = queues.version
        queues.add(subs[0], now=0.0)
        assert queues.version > v
        v = queues.version
        queues.on_cache_insert(subs[0].atom_id)
        assert queues.version > v
        v = queues.version
        queues.pop_atom(subs[0].atom_id)
        assert queues.version > v

    def test_cache_event_on_idle_atom_keeps_view(self):
        queues = WorkloadQueues(SPEC.atoms_per_timestep)
        for sq in make_subqueries(20, seed=10):
            queues.add(sq, now=0.0)
        view = queues.active_view()
        queues.on_cache_insert(10 ** 6)  # atom with no pending work
        assert queues.active_view() is view


class TestRemoveQuery:
    def overlapping_queries(self):
        """Two queries over the same positions (same atoms), plus the
        queues loaded with both at distinct arrival times."""
        queues = WorkloadQueues(SPEC.atoms_per_timestep)
        early = make_subqueries(80, seed=11, qid=100)
        late = make_subqueries(80, seed=11, qid=101)
        for sq in early:
            queues.add(sq, now=1.0)
        for sq in late:
            queues.add(sq, now=5.0)
        return queues, early, late

    def test_remove_missing_query_is_noop(self):
        queues, _, _ = self.overlapping_queries()
        before = queues.total_positions
        assert queues.remove_query(999) == 0
        assert queues.total_positions == before

    def test_remove_restores_true_oldest_arrival(self):
        queues, early, late = self.overlapping_queries()
        atom = early[0].atom_id
        assert queues.oldest_arrival(atom) == 1.0
        queues.remove_query(100)  # cancel the older query
        # The true remaining age is the later query's arrival — not the
        # stale conservative 1.0 the pre-index implementation kept.
        assert queues.oldest_arrival(atom) == 5.0
        assert queues.check_consistency() == []

    def test_remove_counts_and_positions(self):
        queues, early, late = self.overlapping_queries()
        removed = queues.remove_query(101)
        assert removed == len(late)
        assert queues.total_positions == sum(sq.n_positions for sq in early)
        assert queues.check_consistency() == []

    def test_remove_last_query_frees_slots(self):
        queues, early, late = self.overlapping_queries()
        queues.remove_query(100)
        queues.remove_query(101)
        assert len(queues) == 0
        assert queues.total_positions == 0
        assert queues.check_consistency() == []

    def test_pop_atom_entries_keeps_per_subquery_arrivals(self):
        queues, early, late = self.overlapping_queries()
        atom = early[0].atom_id
        entries = queues.pop_atom_entries(atom)
        arrivals = {arrival for arrival, _ in entries}
        assert arrivals == {1.0, 5.0}
        for arrival, sq in entries:
            assert arrival == (1.0 if sq.query.query_id == 100 else 5.0)
        assert atom not in queues
        assert queues.check_consistency() == []

    def test_consistency_detects_arrival_drift(self):
        queues, early, _ = self.overlapping_queries()
        slot = queues._slot_of[early[0].atom_id]
        queues._oldest[slot] = 0.25  # corrupt: no arrival matches
        assert any("min arrival" in p for p in queues.check_consistency())

    def test_consistency_detects_index_drift(self):
        queues, early, _ = self.overlapping_queries()
        queues._by_query[100].pop(early[0].atom_id)
        assert any("inverted index" in p for p in queues.check_consistency())
