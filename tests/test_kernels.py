"""Tests for the Lagrange interpolation kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grid.field import SyntheticTurbulence
from repro.grid.kernels import interpolate_velocity, interpolation_error, lagrange_weights


def smooth_field():
    # Low wavenumbers only: well-resolved by the grid, so interpolation
    # converges fast with order.
    return SyntheticTurbulence(box_size=64.0, n_modes=12, u_rms=10.0, k_min=1.0, k_max=2.5, seed=7)


class TestLagrangeWeights:
    def test_partition_of_unity(self):
        w = lagrange_weights(np.linspace(0, 0.999, 50), order=8)
        np.testing.assert_allclose(w.sum(axis=1), 1.0, atol=1e-10)

    def test_exact_at_nodes(self):
        w = lagrange_weights(np.array([0.0]), order=6)
        # frac = 0 -> all weight on the base node (offset 0, index h-1).
        expected = np.zeros(6)
        expected[2] = 1.0
        np.testing.assert_allclose(w[0], expected, atol=1e-12)

    def test_reproduces_polynomials(self):
        """Order-p Lagrange weights integrate degree<p polynomials
        exactly."""
        frac = np.array([0.3, 0.77])
        order = 6
        nodes = np.arange(-2, 4, dtype=float)
        w = lagrange_weights(frac, order)
        for degree in range(order):
            exact = frac**degree
            approx = w @ (nodes**degree)
            np.testing.assert_allclose(approx, exact, atol=1e-9)

    def test_order_validated(self):
        with pytest.raises(ValueError):
            lagrange_weights(np.array([0.5]), order=5)

    @settings(max_examples=20, deadline=None)
    @given(st.floats(0, 0.999), st.sampled_from([2, 4, 6, 8]))
    def test_weights_bounded(self, frac, order):
        w = lagrange_weights(np.array([frac]), order)
        assert np.isfinite(w).all()
        assert abs(w.sum() - 1.0) < 1e-9


class TestInterpolateVelocity:
    def test_exact_at_grid_nodes(self):
        field = smooth_field()
        nodes = np.array([[1.0, 2.0, 3.0], [10.0, 20.0, 30.0]])
        out = interpolate_velocity(field, nodes, t=0.1, order=8)
        np.testing.assert_allclose(out, field.velocity(nodes, 0.1), atol=1e-9)

    def test_error_decreases_with_order(self):
        field = smooth_field()
        rng = np.random.default_rng(0)
        pts = rng.uniform(0, 64.0, (200, 3))
        errors = [interpolation_error(field, pts, 0.0, order) for order in (2, 4, 8)]
        assert errors[1] < errors[0]
        assert errors[2] < errors[1]

    def test_high_order_is_accurate(self):
        field = smooth_field()
        rng = np.random.default_rng(1)
        pts = rng.uniform(0, 64.0, (200, 3))
        assert interpolation_error(field, pts, 0.0, order=8) < 1e-3

    def test_periodic_boundary(self):
        """Positions near the box edge interpolate across the wrap."""
        field = smooth_field()
        pts = np.array([[63.6, 0.2, 31.9]])
        out = interpolate_velocity(field, pts, 0.0, order=8)
        np.testing.assert_allclose(out, field.velocity(pts, 0.0), rtol=1e-3, atol=1e-4)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            interpolate_velocity(smooth_field(), np.zeros((2, 2)), 0.0)
