"""Runtime sanitizer coverage.

Two families of checks:

* a sanitized run is *observationally free* — bit-identical virtual-
  time results, violations never fire on healthy runs;
* every invariant actually trips: engine state is corrupted mid-run
  (or a hook is fed corrupt data) and the resulting
  :class:`~repro.errors.InvariantViolation` names the invariant.
"""

import dataclasses

import numpy as np
import pytest

from repro.analysis.sanitizer import SimulationSanitizer
from repro.config import CacheConfig, CostModel, EngineConfig, FaultConfig
from repro.core.base import Batch
from repro.engine.events import EventKind
from repro.engine.executor import BatchOutcome
from repro.engine.runner import make_scheduler
from repro.engine.simulator import Simulator
from repro.errors import InvariantViolation
from repro.grid.dataset import DatasetSpec
from repro.workload.generator import WorkloadParams, generate_trace

SPEC = DatasetSpec.small(n_timesteps=6, atoms_per_axis=4)

#: Wall-clock profiling fields — the only RunResult content allowed to
#: differ between two otherwise identical runs (DESIGN.md §7).
WALL_CLOCK_FIELDS = frozenset({"gating_overhead_ns", "cache_overhead_ns"})


def small_trace(seed=0, n_jobs=15):
    return generate_trace(SPEC, WorkloadParams(n_jobs=n_jobs, span=120.0, seed=seed))


def engine(**kwargs):
    return EngineConfig(
        cost=CostModel(t_b=0.02, t_m=1e-5),
        cache=CacheConfig(capacity_atoms=32),
        run_length=10,
        **kwargs,
    )


def result_digest(result):
    """RunResult as comparable data, wall-clock profiling excluded."""
    out = {}
    for f in dataclasses.fields(result):
        if f.name in WALL_CLOCK_FIELDS:
            continue
        value = getattr(result, f.name)
        if isinstance(value, np.ndarray):
            out[f.name] = (value.shape, str(value.dtype), value.tobytes())
        elif f.name == "cache":
            out[f.name] = {k: v for k, v in value.items() if k != "overhead_ns"}
        else:
            out[f.name] = repr(value)
    return out


def build_sim(name="jaws2", sanitize=True, faults=None, seed=0):
    eng = engine(sanitize=sanitize, **({"faults": faults} if faults else {}))
    trace = small_trace(seed=seed)
    return Simulator(trace, [make_scheduler(name, trace, eng)], eng)


# ---------------------------------------------------------------------------
# Observational freedom
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("name", ["noshare", "liferaft2", "jaws1", "jaws2"])
def test_sanitized_run_is_bit_identical(name):
    trace = small_trace()
    off = Simulator(trace, [make_scheduler(name, trace, engine())], engine()).run()
    eng = engine(sanitize=True)
    sim = Simulator(trace, [make_scheduler(name, trace, eng)], eng)
    on = sim.run()
    assert sim.sanitizer is not None and sim.sanitizer.checks > 0
    assert result_digest(off) == result_digest(on)


def test_sanitized_run_with_faults_is_bit_identical():
    faults = FaultConfig(seed=5, transient_fault_rate=0.05, permanent_loss_rate=0.01)
    trace = small_trace()
    eng_off = engine(faults=faults)
    eng_on = engine(faults=faults, sanitize=True)
    off = Simulator(trace, [make_scheduler("jaws2", trace, eng_off)], eng_off).run()
    on = Simulator(trace, [make_scheduler("jaws2", trace, eng_on)], eng_on).run()
    assert result_digest(off) == result_digest(on)


def test_sanitizer_disabled_by_default():
    sim = build_sim(sanitize=False)
    assert sim.sanitizer is None
    sim.run()


# ---------------------------------------------------------------------------
# Mid-run corruption: each invariant must fire and name itself
# ---------------------------------------------------------------------------
def run_with_corruption(sim, corrupt, after_checks=5):
    """Run ``sim``, applying ``corrupt(sim)`` once ``after_checks``
    invariant sweeps have passed (so real state exists to corrupt).
    Returns the InvariantViolation the sanitizer raised."""
    sanitizer = sim.sanitizer
    orig = sanitizer.after_event
    state = {"armed": True}

    def wrapper():
        if state["armed"] and sanitizer.checks >= after_checks and corrupt(sim):
            state["armed"] = False
        orig()

    sanitizer.after_event = wrapper
    with pytest.raises(InvariantViolation) as exc_info:
        sim.run()
    return exc_info.value


def test_conservation_violation_fires():
    def corrupt(sim):
        if not sim._remaining:
            return False
        qid = next(iter(sim._remaining))
        sim._remaining[qid] += 1  # phantom outstanding sub-query
        return True

    violation = run_with_corruption(build_sim(), corrupt)
    assert violation.invariant == "subquery_conservation"
    assert "subquery_conservation" in str(violation)


def test_orphan_subquery_fires():
    def corrupt(sim):
        # Orphans count only *queued* sub-queries: in-flight batches and
        # parked REROUTEs of a cancelled query are by-design zombies.
        queued, _zombie = sim.sanitizer._located_subqueries()
        live = [qid for qid in queued if qid in sim._remaining]
        if not live:
            return False
        # Engine forgets the query while its sub-queries stay queued.
        del sim._remaining[live[0]]
        return True

    violation = run_with_corruption(build_sim(), corrupt)
    assert violation.invariant == "subquery_conservation"


def test_queue_coherence_violation_fires():
    def corrupt(sim):
        queues = getattr(sim.nodes[0].scheduler, "queues", None)
        if queues is None:
            return False
        queues.total_positions += 7  # break position accounting
        return True

    violation = run_with_corruption(build_sim(), corrupt)
    assert violation.invariant == "queue_coherence"
    assert "total_positions" in str(violation)


def test_clock_monotonicity_violation_fires():
    def corrupt(sim):
        if sim.clock <= 1.0:
            return False
        sim.clock -= 1.0  # virtual time runs backwards
        return True

    violation = run_with_corruption(build_sim(), corrupt)
    assert violation.invariant == "clock_monotonicity"


def test_gating_consistency_violation_fires():
    def corrupt(sim):
        gating = getattr(sim.nodes[0].scheduler, "_gating", None)
        if gating is None or not gating.graph._groups:
            return False
        gid = next(iter(gating.graph._groups))
        gating.graph._groups[gid].add(999_999_999)  # ghost member
        return True

    violation = run_with_corruption(build_sim("jaws2"), corrupt, after_checks=1)
    assert violation.invariant == "gating_consistency"


# ---------------------------------------------------------------------------
# Hook-level corruption (events and batches)
# ---------------------------------------------------------------------------
def started_sim():
    sim = build_sim()
    sim.run()
    return sim


def test_event_scheduled_into_past_fires():
    sim = started_sim()
    with pytest.raises(InvariantViolation) as exc_info:
        sim.sanitizer.on_schedule(sim.clock - 5.0, EventKind.BATCH_DONE)
    assert exc_info.value.invariant == "clock_monotonicity"


def test_non_finite_event_time_fires():
    sim = started_sim()
    with pytest.raises(InvariantViolation) as exc_info:
        sim.sanitizer.on_schedule(float("nan"), EventKind.BATCH_DONE)
    assert exc_info.value.invariant == "clock_monotonicity"


def test_negative_batch_duration_fires():
    sim = started_sim()
    batch = Batch(atoms=[])
    with pytest.raises(InvariantViolation) as exc_info:
        sim.sanitizer.check_batch(batch, BatchOutcome(duration=-0.5))
    assert exc_info.value.invariant == "batch_sanity"


def test_foreign_failed_subquery_fires():
    trace = small_trace()
    some_query = trace.jobs[0].queries[0]
    from repro.workload.query import SubQuery

    foreign = SubQuery(query=some_query, atom_id=0, position_indices=np.arange(1))
    sim = started_sim()
    with pytest.raises(InvariantViolation) as exc_info:
        sim.sanitizer.check_batch(
            Batch(atoms=[]), BatchOutcome(duration=0.1, failed=[foreign])
        )
    assert exc_info.value.invariant == "batch_sanity"


# ---------------------------------------------------------------------------
# Gating acyclicity (graph surgery; admission would reject the cycle)
# ---------------------------------------------------------------------------
def test_gating_acyclicity_violation_fires():
    from repro.core.gating import PrecedenceGraph

    graph = PrecedenceGraph()
    graph.add_job(1, [10, 11], [frozenset({0}), frozenset({1})])
    graph.add_job(2, [20, 21], [frozenset({0}), frozenset({1})])
    # Cross-merge the cliques by hand: {10, 21} and {11, 20}.  Job 1
    # orders g(10) -> g(11); job 2 orders g(20)=g(11) -> g(21)=g(10):
    # a cycle admit_edge() would have rejected.
    ga = graph._v[10].group
    gb = graph._v[11].group
    for qid, target in ((21, ga), (20, gb)):
        old = graph._v[qid].group
        graph._groups[old].discard(qid)
        if not graph._groups[old]:
            del graph._groups[old]
        graph._v[qid].group = target
        graph._groups[target].add(qid)
    assert not graph.is_acyclic()

    class _StubScheduler:
        def __init__(self):
            self._gating = type("G", (), {"graph": graph})()
            self.queues = None

        def queue_depth(self):
            return 0

    class _StubNode:
        def __init__(self):
            self.scheduler = _StubScheduler()
            self.busy = False

    class _StubSim:
        clock = 0.0
        event_index = 0
        injector = None
        _remaining = {}
        _heap = ()

        def __init__(self):
            self.nodes = [_StubNode()]

    sanitizer = SimulationSanitizer(_StubSim())
    # validate() itself may also flag the broken fixed point; silence it
    # so the acyclicity check specifically is exercised.
    graph.validate = lambda: []
    with pytest.raises(InvariantViolation) as exc_info:
        sanitizer._check_gating()
    assert exc_info.value.invariant == "gating_acyclicity"
    assert "cycle" in str(exc_info.value)


def test_gating_validate_reports_clean_graph():
    from repro.core.gating import PrecedenceGraph

    graph = PrecedenceGraph()
    graph.add_job(1, [10, 11], [frozenset({0}), frozenset({1})])
    graph.add_job(2, [20, 21], [frozenset({0}), frozenset({1})])
    assert graph.admit_edge(10, 20)
    assert graph.validate() == []
    assert graph.is_acyclic()


def test_queue_check_consistency_reports_clean_queues():
    sim = build_sim("jaws2", sanitize=False)
    sim.run()
    queues = sim.nodes[0].scheduler.queues
    assert queues.check_consistency() == []


def test_violation_carries_state_snapshot():
    def corrupt(sim):
        if not sim._remaining:
            return False
        sim._remaining[next(iter(sim._remaining))] += 1
        return True

    violation = run_with_corruption(build_sim(), corrupt)
    assert violation.invariant == "subquery_conservation"
    assert violation.details
    assert violation.clock >= 0.0
    assert isinstance(violation.pending_queries, list)
    assert violation.queue_depths and violation.busy_flags is not None
