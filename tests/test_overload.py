"""Overload-protection test suite (DESIGN.md §9).

Covers the four overload layers in isolation — token-bucket admission,
brownout mode machine, weighted fair quotas, shed-policy victim
ranking — and their composition through the discrete-event engine:
deterministic admission under a seeded flash crowd, the shed
conservation invariant under the runtime sanitizer, the fair-quota
starvation regression, the acceptance-criterion p99 bound, and
crash+resume bit-identity with overload protection active mid-burst.

The slow-marked soak at the bottom crosses flash crowds with disk
faults and random coordinator-crash points (CI ``overload-soak`` job,
``pytest -m slow tests/test_overload.py``).
"""

import dataclasses
import pickle
import random

import pytest

from repro.config import (
    SHED_POLICIES,
    CheckpointConfig,
    CostModel,
    EngineConfig,
    FaultConfig,
    OverloadConfig,
    SchedulerConfig,
)
from repro.core.qos import QoSJAWSScheduler
from repro.engine.results import RunResult
from repro.engine.runner import make_scheduler, run_trace
from repro.engine.simulator import Simulator
from repro.errors import ConfigurationError, CoordinatorCrash, QueryRejected
from repro.grid.dataset import DatasetSpec
from repro.overload import (
    AdmissionController,
    BrownoutController,
    FairShareController,
    Mode,
    OverloadManager,
    PendingWork,
    TokenBucketLimiter,
    make_shed_policy,
)
from repro.workload.generator import (
    FlashCrowdParams,
    WorkloadParams,
    generate_trace,
    inject_flash_crowd,
)
from repro.workload.job import Job, JobKind

from tests.test_determinism import assert_identical

SPEC = DatasetSpec.small(n_timesteps=8, atoms_per_axis=4)

#: tight protection knobs shared by the engine-integration scenarios
PROTECTION = OverloadConfig(
    enabled=True,
    max_queue_depth=16,
    client_rate=1.0,
    client_burst=3.0,
    shed_policy="deadline",
    throttle_enter=0.4,
    throttle_exit=0.25,
    shed_enter=0.7,
    shed_exit=0.45,
    shed_target=0.4,
)


def overload_cfg(**kw):
    base = dict(enabled=True)
    base.update(kw)
    return OverloadConfig(**base)


def job(job_id=0, user_id=0, kind=JobKind.ORDERED, client_class=""):
    return Job(job_id, kind, user_id, 0.0, client_class=client_class)


def pending(
    qid,
    client_class="interactive",
    weight=6.0,
    arrival=0.0,
    n=1,
    density=1.0,
    service=1.0,
    deadline=100.0,
    job_id=0,
):
    return PendingWork(
        query_id=qid,
        job_id=job_id,
        client_class=client_class,
        arrival=arrival,
        n_subqueries=n,
        density=density,
        service_estimate=service,
        deadline=deadline,
        class_weight=weight,
    )


# ---------------------------------------------------------------------------
# Token-bucket admission
# ---------------------------------------------------------------------------
class TestTokenBucketLimiter:
    def test_fresh_client_bursts_then_blocks(self):
        limiter = TokenBucketLimiter(rate=1.0, burst=3.0)
        assert [limiter.try_acquire(7, 0.0) for _ in range(3)] == [None] * 3
        retry = limiter.try_acquire(7, 0.0)
        assert retry == pytest.approx(1.0)  # (1 - 0 tokens) / rate

    def test_retry_after_hint_is_honest(self):
        limiter = TokenBucketLimiter(rate=2.0, burst=1.0)
        assert limiter.try_acquire(1, 0.0) is None
        retry = limiter.try_acquire(1, 0.0)
        assert retry == pytest.approx(0.5)
        # Just before the hint the bucket is still short...
        assert limiter.try_acquire(1, 0.4) is not None
        # ...and exactly at the hinted instant admission succeeds.
        assert limiter.try_acquire(1, 0.5 + 1e-9) is None

    def test_refill_caps_at_burst(self):
        limiter = TokenBucketLimiter(rate=10.0, burst=2.0)
        assert limiter.tokens(3, 1000.0) == pytest.approx(2.0)

    def test_refusal_consumes_nothing(self):
        limiter = TokenBucketLimiter(rate=1.0, burst=1.0)
        limiter.try_acquire(5, 0.0)
        before = limiter.tokens(5, 0.3)
        limiter.try_acquire(5, 0.3)
        assert limiter.tokens(5, 0.3) == pytest.approx(before)

    def test_same_sequence_same_decisions(self):
        def decisions():
            limiter = TokenBucketLimiter(rate=0.7, burst=2.0)
            times = [0.0, 0.1, 0.4, 1.3, 1.35, 2.0, 5.0, 5.01]
            return [limiter.try_acquire(i % 3, t) for i, t in enumerate(times)]

        assert decisions() == decisions()

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucketLimiter(rate=0.0, burst=2.0)
        with pytest.raises(ValueError):
            TokenBucketLimiter(rate=1.0, burst=0.5)


class TestAdmissionController:
    def test_queue_full_checked_before_token_charge(self):
        cfg = overload_cfg(max_queue_depth=4, client_rate=1.0, client_burst=1.0)
        ctl = AdmissionController(cfg, capacity=4)
        rejection = ctl.admit_job(job(user_id=9), global_depth=4, now=0.0)
        assert isinstance(rejection, QueryRejected)
        assert rejection.reason == "queue_full"
        # The saturated-cluster refusal did not charge the client.
        assert ctl.limiter.tokens(9, 0.0) == pytest.approx(1.0)

    def test_rate_limit_rejection_carries_retry_after(self):
        cfg = overload_cfg(client_rate=2.0, client_burst=1.0)
        ctl = AdmissionController(cfg, capacity=100)
        assert ctl.admit_job(job(user_id=1), 0, 0.0) is None
        rejection = ctl.admit_job(job(job_id=1, user_id=1), 0, 0.0)
        assert rejection.reason == "rate_limit"
        assert rejection.retry_after == pytest.approx(0.5)
        assert rejection.user_id == 1


# ---------------------------------------------------------------------------
# Brownout mode machine
# ---------------------------------------------------------------------------
class TestBrownoutController:
    def test_one_severity_step_per_tick(self):
        # ewma_beta=0 makes the signal equal the raw sample, so a full
        # queue is visible immediately — the machine must still pass
        # through THROTTLED on its way to SHEDDING.
        ctl = BrownoutController(overload_cfg(ewma_beta=0.0))
        assert ctl.on_tick(1.0, 1.0) is Mode.THROTTLED
        assert ctl.on_tick(1.0, 2.0) is Mode.SHEDDING
        assert ctl.mode is Mode.SHEDDING

    def test_hysteresis_holds_mode_between_thresholds(self):
        cfg = overload_cfg(
            ewma_beta=0.0,
            throttle_enter=0.5,
            throttle_exit=0.3,
            shed_enter=0.9,
            shed_exit=0.6,
        )
        ctl = BrownoutController(cfg)
        ctl.on_tick(0.55, 1.0)
        assert ctl.mode is Mode.THROTTLED
        # Signal drops below the *enter* threshold but stays above the
        # *exit* threshold: no flap back to NORMAL.
        assert ctl.on_tick(0.4, 2.0) is None
        assert ctl.mode is Mode.THROTTLED
        assert ctl.on_tick(0.2, 3.0) is Mode.NORMAL

    def test_ewma_rejects_single_sample_spike(self):
        ctl = BrownoutController(overload_cfg(ewma_beta=0.9))
        assert ctl.on_tick(1.0, 1.0) is None  # smoothed to 0.1 < enter
        assert ctl.mode is Mode.NORMAL

    def test_time_in_mode_accounting(self):
        ctl = BrownoutController(overload_cfg(ewma_beta=0.0))
        ctl.on_tick(1.0, 10.0)  # NORMAL for [0, 10)
        ctl.on_tick(1.0, 25.0)  # THROTTLED for [10, 25)
        ctl.on_tick(0.0, 40.0)  # SHEDDING for [25, 40)
        spent = ctl.finalize(60.0)  # back in THROTTLED for [40, 60)
        assert spent["NORMAL"] == pytest.approx(10.0)
        assert spent["THROTTLED"] == pytest.approx(35.0)
        assert spent["SHEDDING"] == pytest.approx(15.0)
        assert sum(spent.values()) == pytest.approx(60.0)
        # Finalizing again at the same instant adds nothing.
        assert ctl.finalize(60.0) == spent
        assert ctl.transitions == 3

    def test_throttles_by_class_and_mode(self):
        ctl = BrownoutController(overload_cfg())
        assert not any(
            ctl.throttles(c) for c in ("interactive", "tracking", "batch")
        )
        ctl.mode = Mode.THROTTLED
        assert ctl.throttles("batch")
        assert not ctl.throttles("tracking")
        assert not ctl.throttles("interactive")
        ctl.mode = Mode.SHEDDING
        assert ctl.throttles("batch")
        assert ctl.throttles("tracking")
        assert not ctl.throttles("interactive")

    def test_response_signal_needs_a_target(self):
        ctl = BrownoutController(overload_cfg(ewma_beta=0.0))
        ctl.note_response(1e9)
        assert ctl.signal() == 0.0

    def test_response_pressure_can_drive_throttling(self):
        cfg = overload_cfg(ewma_beta=0.0, target_response_time=1.0)
        ctl = BrownoutController(cfg)
        ctl.note_response(2.0)  # 2x target
        assert ctl.signal() >= cfg.throttle_enter
        assert ctl.on_tick(0.0, 1.0) is Mode.THROTTLED


# ---------------------------------------------------------------------------
# Shed-policy victim ranking
# ---------------------------------------------------------------------------
class TestShedPolicies:
    def test_class_weight_is_the_primary_key(self):
        batch = pending(1, "batch", weight=1.0, arrival=50.0)
        tracking = pending(2, "tracking", weight=3.0, arrival=99.0)
        interactive = pending(3, "interactive", weight=6.0, arrival=99.0)
        for name in SHED_POLICIES:
            order = make_shed_policy(name).rank(
                [interactive, tracking, batch], now=0.0
            )
            assert [p.query_id for p in order] == [1, 2, 3], name

    def test_reject_newest_drops_latest_arrival_first(self):
        order = make_shed_policy("reject-newest").rank(
            [pending(1, arrival=5.0), pending(2, arrival=20.0), pending(3, arrival=1.0)],
            now=30.0,
        )
        assert [p.query_id for p in order] == [2, 1, 3]

    def test_low_density_drops_least_sharing_value_first(self):
        order = make_shed_policy("low-density").rank(
            [pending(1, density=8.0), pending(2, density=0.5), pending(3, density=2.0)],
            now=0.0,
        )
        assert [p.query_id for p in order] == [2, 3, 1]

    def test_deadline_drops_infeasible_then_least_slack(self):
        doomed = pending(1, service=10.0, deadline=5.0)  # provably late
        tight = pending(2, service=1.0, deadline=3.0)  # slack 2
        loose = pending(3, service=1.0, deadline=50.0)  # slack 49
        order = make_shed_policy("deadline").rank([loose, tight, doomed], now=0.0)
        assert [p.query_id for p in order] == [1, 2, 3]
        assert doomed.infeasible(0.0) and not tight.infeasible(0.0)
        assert tight.slack(0.0) == pytest.approx(2.0)

    def test_query_id_breaks_ties(self):
        twins = [pending(9), pending(4), pending(7)]
        for name in SHED_POLICIES:
            order = make_shed_policy(name).rank(twins, now=0.0)
            assert [p.query_id for p in order] == [4, 7, 9], name

    def test_unknown_policy_is_a_typed_config_error(self):
        with pytest.raises(ConfigurationError):
            make_shed_policy("oldest-first")

    def test_policy_names_match_config(self):
        for name in SHED_POLICIES:
            assert make_shed_policy(name).name == name


# ---------------------------------------------------------------------------
# Weighted fair quotas
# ---------------------------------------------------------------------------
class TestFairShareController:
    def test_quotas_proportional_to_weights(self):
        ctl = FairShareController(overload_cfg(), capacity=100)
        assert ctl.quota_for("interactive") == pytest.approx(60.0)
        assert ctl.quota_for("tracking") == pytest.approx(30.0)
        assert ctl.quota_for("batch") == pytest.approx(10.0)

    def test_unknown_class_gets_smallest_share(self):
        ctl = FairShareController(overload_cfg(), capacity=100)
        assert ctl.quota_for("scraper") == pytest.approx(10.0)
        assert ctl.weight("scraper") == pytest.approx(1.0)

    def test_work_conserving_below_enforce_fraction(self):
        ctl = FairShareController(
            overload_cfg(quota_enforce_fraction=0.5), capacity=100
        )
        # 100% batch on a half-empty cluster is fine...
        assert not ctl.over_quota("batch", class_slots=45, global_slots=49)
        # ...but once slots are scarce the quota binds.
        assert ctl.over_quota("batch", class_slots=45, global_slots=50)
        assert ctl.over_quota("batch", class_slots=10, global_slots=50)
        assert not ctl.over_quota("batch", class_slots=9, global_slots=50)

    def test_interactive_retains_headroom_under_batch_flood(self):
        ctl = FairShareController(overload_cfg(), capacity=100)
        assert not ctl.over_quota("interactive", class_slots=40, global_slots=90)


# ---------------------------------------------------------------------------
# Manager composition
# ---------------------------------------------------------------------------
class TestOverloadManager:
    def manager(self, **kw):
        base = dict(max_queue_depth=10, client_rate=1.0, client_burst=2.0)
        base.update(kw)
        return OverloadManager(overload_cfg(**base), CostModel(), n_nodes=1)

    def test_brownout_outranks_quota_and_rate_limit(self):
        mgr = self.manager()
        mgr.brownout.mode = Mode.THROTTLED
        rejection = mgr.admit_job(job(kind=JobKind.BATCHED), 0, 0.0)
        assert rejection is not None and rejection.reason == "throttled"
        assert mgr.throttled_jobs == 1
        # Interactive traffic still flows in THROTTLED mode.
        assert mgr.admit_job(job(job_id=1, user_id=1), 0, 0.0) is None

    def test_quota_rejection_when_class_over_share(self):
        mgr = self.manager(quota_enforce_fraction=0.5)
        for qid in range(5):
            mgr.register(pending(qid, "batch", weight=1.0), n_slots=1)
        rejection = mgr.admit_job(
            job(user_id=3, kind=JobKind.BATCHED), global_depth=6, now=0.0
        )
        assert rejection is not None and rejection.reason == "quota"

    def test_slot_accounting_follows_progress(self):
        mgr = self.manager()
        mgr.register(pending(1, "interactive", n=3), n_slots=3)
        mgr.on_subquery_done(1)
        assert mgr.class_slots["interactive"] == 2
        mgr.on_query_removed(1, remaining_slots=2)
        assert mgr.class_slots["interactive"] == 0
        assert 1 not in mgr.pending

    def test_tick_sheds_down_to_target_in_shed_order(self):
        mgr = self.manager(
            ewma_beta=0.0,
            throttle_enter=0.3,
            throttle_exit=0.2,
            shed_enter=0.6,
            shed_exit=0.4,
            shed_target=0.4,
        )
        for qid in range(8):
            mgr.register(pending(qid, arrival=float(qid), n=1), n_slots=1)
        assert mgr.on_tick(8, 1.0) == []  # NORMAL -> THROTTLED, no shedding yet
        victims = mgr.on_tick(8, 2.0)  # THROTTLED -> SHEDDING, drain to 0.4*10
        assert mgr.brownout.mode is Mode.SHEDDING
        # Excess = 8 - 4 = 4 single-slot queries, shed newest-arrival
        # last under the default deadline policy's qid tiebreak.
        assert len(victims) == 4
        assert victims == sorted(victims)

    def test_rejection_samples_are_bounded(self):
        mgr = self.manager(client_rate=0.001, client_burst=1.0)
        for i in range(40):
            mgr.admit_job(job(job_id=i, user_id=0), 0, 0.0)
        assert mgr.rejected_jobs == 39  # first admission spends the only token
        assert len(mgr.rejection_samples) <= 20
        assert mgr.rejected_by_reason == {"rate_limit": 39}

    def test_manager_pickles_for_checkpointing(self):
        mgr = self.manager()
        mgr.admit_job(job(), 0, 0.0)
        mgr.register(pending(1), n_slots=1)
        mgr.on_tick(5, 1.0)
        clone = pickle.loads(pickle.dumps(mgr))
        assert clone.snapshot(2.0) == mgr.snapshot(2.0)
        # Post-restore decisions match: same limiter state, same policy.
        assert clone.admit_job(job(job_id=9), 0, 1.5) == mgr.admit_job(
            job(job_id=9), 0, 1.5
        ) or (
            clone.admit_job(job(job_id=9), 0, 1.5) is None
            and mgr.admit_job(job(job_id=9), 0, 1.5) is None
        )


# ---------------------------------------------------------------------------
# Configuration validation
# ---------------------------------------------------------------------------
class TestConfigValidation:
    @pytest.mark.parametrize(
        "kw",
        [
            {"client_rate": 0.0},
            {"client_burst": 0.5},
            {"max_queue_depth": 0},
            {"shed_policy": "coin-flip"},
            {"slack_factor": 0.0},
            {"control_interval": 0.0},
            {"ewma_beta": 1.0},
            {"target_response_time": 0.0},
            {"throttle_enter": 0.2, "throttle_exit": 0.4},
            {"shed_enter": 0.3, "throttle_enter": 0.5},
            {"class_weights": ()},
            {"class_weights": (("batch", 1.0), ("batch", 2.0))},
            {"class_weights": (("batch", -1.0),)},
            {"quota_enforce_fraction": 1.5},
        ],
    )
    def test_bad_overload_config_rejected(self, kw):
        with pytest.raises(ConfigurationError):
            overload_cfg(**kw)

    def test_defaults_are_valid_and_disabled(self):
        cfg = OverloadConfig()
        assert not cfg.enabled
        assert cfg.shed_policy in SHED_POLICIES

    @pytest.mark.parametrize(
        "kw",
        [
            {"slack_factor": 0},
            {"slack_factor": True},
            {"slack_factor": "fast"},
            {"lookahead": -1.0},
            {"lookahead": None},
        ],
    )
    def test_qos_scheduler_rejects_bad_knobs(self, kw):
        with pytest.raises(ConfigurationError):
            QoSJAWSScheduler(SPEC, CostModel(), SchedulerConfig(), **kw)


# ---------------------------------------------------------------------------
# QoS cancelled-query accounting (satellite: misses must include sheds)
# ---------------------------------------------------------------------------
class TestQoSCancelAccounting:
    def arrive(self, scheduler, qid, now=0.0, n_positions=5):
        import numpy as np

        from repro.grid.atoms import AtomMapper
        from repro.workload.query import Query, preprocess_query

        query = Query(qid, qid, 0, 0, "velocity", 0, np.full((n_positions, 3), 32.0))
        subs = preprocess_query(query, AtomMapper(SPEC))
        scheduler.on_query_arrival(query, subs, now)
        return query

    def test_cancelled_query_counts_as_miss(self):
        s = QoSJAWSScheduler(SPEC, CostModel(), SchedulerConfig(), slack_factor=5.0)
        self.arrive(s, 0)
        self.arrive(s, 1)
        s.cancel_query(0, now=0.5)
        assert s.cancelled == 1
        assert s.deadline_misses == 1
        assert 0 not in s._deadline
        # Miss rate is over *accounted* queries: completed + cancelled.
        assert s.miss_rate == 1.0

    def test_cancellation_past_deadline_accrues_tardiness(self):
        s = QoSJAWSScheduler(
            SPEC, CostModel(), SchedulerConfig(), slack_factor=1e-6
        )
        self.arrive(s, 0, now=0.0)
        s.cancel_query(0, now=10.0)
        assert s.total_tardiness == pytest.approx(10.0, rel=1e-3)
        assert s.mean_tardiness == pytest.approx(10.0, rel=1e-3)

    def test_cancel_prunes_stale_atom_deadlines(self):
        s = QoSJAWSScheduler(SPEC, CostModel(), SchedulerConfig(), slack_factor=5.0)
        self.arrive(s, 0)
        assert s._atom_deadline
        s.cancel_query(0, now=0.1)
        assert not s._atom_deadline


# ---------------------------------------------------------------------------
# Flash-crowd workload generation
# ---------------------------------------------------------------------------
def base_trace(n_jobs=100, span=1000.0, seed=11):
    return generate_trace(
        SPEC,
        WorkloadParams(
            n_jobs=n_jobs,
            span=span,
            frac_tracking=0.0,
            frac_batched=0.0,
            burstiness=0.2,
            seed=seed,
        ),
    )


class TestFlashCrowd:
    def test_burst_jobs_land_inside_the_window(self):
        base = base_trace(n_jobs=30, span=300.0)
        params = FlashCrowdParams(factor=5.0, start=100.0, duration=50.0, seed=1)
        burst = inject_flash_crowd(base, params)
        new = [j for j in burst.jobs if j.job_id > max(x.job_id for x in base.jobs)]
        assert new, "flash crowd injected no jobs"
        assert all(100.0 <= j.submit_time <= 150.0 for j in new)
        assert all(j.n_queries == 1 for j in new)

    def test_burst_clients_are_distinct_first_timers(self):
        base = base_trace(n_jobs=30, span=300.0)
        burst = inject_flash_crowd(
            base, FlashCrowdParams(factor=5.0, start=100.0, duration=50.0, seed=1)
        )
        base_users = {j.user_id for j in base.jobs}
        new = [j for j in burst.jobs if j.user_id not in base_users]
        new_users = [j.user_id for j in new]
        assert len(new_users) == len(set(new_users))

    def test_ids_unique_and_submit_times_sorted(self):
        base = base_trace(n_jobs=30, span=300.0)
        burst = inject_flash_crowd(
            base, FlashCrowdParams(factor=5.0, start=100.0, duration=50.0, seed=1)
        )
        job_ids = [j.job_id for j in burst.jobs]
        query_ids = [q.query_id for j in burst.jobs for q in j.queries]
        assert len(job_ids) == len(set(job_ids))
        assert len(query_ids) == len(set(query_ids))
        times = [j.submit_time for j in burst.jobs]
        assert times == sorted(times)

    def test_injection_is_deterministic(self):
        base = base_trace(n_jobs=30, span=300.0)
        params = FlashCrowdParams(factor=5.0, start=100.0, duration=50.0, seed=2)
        a = inject_flash_crowd(base, params)
        b = inject_flash_crowd(base, params)
        assert [j.job_id for j in a.jobs] == [j.job_id for j in b.jobs]
        assert [j.submit_time for j in a.jobs] == [j.submit_time for j in b.jobs]

    def test_factor_must_exceed_one(self):
        with pytest.raises(ValueError):
            FlashCrowdParams(factor=1.0)
        with pytest.raises(ValueError):
            FlashCrowdParams(duration=0.0)


# ---------------------------------------------------------------------------
# Engine integration: the acceptance scenario
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def flash_runs():
    """Baseline / unprotected / protected runs of the seeded 20x flash
    crowd (the scenario from ``examples/overload.py``), plus a repeat
    of the protected run for the determinism assertion."""
    base = base_trace()
    burst = inject_flash_crowd(
        base, FlashCrowdParams(factor=20.0, start=300.0, duration=100.0, seed=5)
    )
    engine = EngineConfig(cost=CostModel(t_b=0.5))
    protected = dataclasses.replace(engine, overload=PROTECTION)
    return {
        "base_trace": base,
        "burst_trace": burst,
        "baseline": run_trace(base, "jaws2", engine),
        "unprotected": run_trace(burst, "jaws2", engine),
        "protected": run_trace(burst, "jaws2", protected),
        "protected_repeat": run_trace(burst, "jaws2", protected),
    }


class TestFlashCrowdProtection:
    def test_protection_bounds_interactive_p99(self, flash_runs):
        base_p99 = flash_runs["baseline"].class_percentiles()["interactive"]["p99"]
        unprot = flash_runs["unprotected"].class_percentiles()["interactive"]["p99"]
        prot = flash_runs["protected"].class_percentiles()["interactive"]["p99"]
        # Acceptance criterion: without protection the flash crowd blows
        # interactive p99 past 10x the no-burst baseline; with admission
        # control + brownout the p99 of *admitted* queries stays within 3x.
        assert unprot > 10.0 * base_p99
        assert prot <= 3.0 * base_p99

    def test_protected_run_turns_clients_away(self, flash_runs):
        result = flash_runs["protected"]
        assert result.rejected_jobs > 0
        assert result.admission_rate < 1.0
        assert sum(result.overload["rejected_by_reason"].values()) == (
            result.rejected_jobs
        )

    def test_brownout_engaged_and_recovered(self, flash_runs):
        overload = flash_runs["protected"].overload
        assert overload["mode"] == "NORMAL"  # recovered by end of run
        assert overload["time_in_mode"]["THROTTLED"] > 0
        assert overload["mode_transitions"] >= 2
        assert overload["ticks"] > 0

    def test_unprotected_run_reports_no_overload_activity(self, flash_runs):
        result = flash_runs["unprotected"]
        assert result.rejected_jobs == 0
        assert result.shed_queries == 0
        assert result.overload == {}
        assert result.admission_rate == 1.0

    def test_admission_decisions_deterministic(self, flash_runs):
        assert_identical(flash_runs["protected"], flash_runs["protected_repeat"])

    def test_every_query_lands_in_exactly_one_bucket(self, flash_runs):
        result = flash_runs["protected"]
        trace = flash_runs["burst_trace"]
        accounted = (
            result.n_queries
            + result.cancelled_queries
            + result.shed_queries
            + result.rejected_queries
        )
        assert accounted == trace.n_queries

    def test_result_roundtrips_with_overload_fields(self, flash_runs):
        result = flash_runs["protected"]
        clone = RunResult.from_dict(result.to_dict())
        assert clone.rejected_jobs == result.rejected_jobs
        assert clone.rejected_queries == result.rejected_queries
        assert clone.shed_queries == result.shed_queries
        assert clone.throttled_jobs == result.throttled_jobs
        assert clone.overload == result.overload
        assert clone.class_response_times == result.class_response_times
        assert clone.overload_summary() == result.overload_summary()

    def test_legacy_result_dicts_still_load(self, flash_runs):
        payload = flash_runs["baseline"].to_dict()
        for key in (
            "rejected_jobs",
            "rejected_queries",
            "shed_queries",
            "throttled_jobs",
            "class_response_times",
            "overload",
        ):
            payload.pop(key, None)
        clone = RunResult.from_dict(payload)
        assert clone.rejected_jobs == 0
        assert clone.overload == {}


# ---------------------------------------------------------------------------
# Smaller scenario: sanitizer, fairness regression, crash+resume
# ---------------------------------------------------------------------------
def small_flash_trace():
    base = base_trace(n_jobs=40, span=240.0, seed=7)
    return inject_flash_crowd(
        base, FlashCrowdParams(factor=8.0, start=60.0, duration=40.0, seed=3)
    )


def protected_engine(**kw):
    return EngineConfig(
        cost=CostModel(t_b=0.5),
        overload=dataclasses.replace(PROTECTION, max_queue_depth=12),
        **kw,
    )


class TestEngineIntegration:
    def test_sanitizer_passes_with_shedding_active(self):
        trace = small_flash_trace()
        cfg = protected_engine(sanitize=True)
        result = run_trace(trace, "jaws2", cfg)
        # The sweep ran and the shed-conservation invariant held at
        # every event; the sanitizer never perturbs results.
        assert_identical(result, run_trace(trace, "jaws2", protected_engine()))
        assert result.rejected_jobs > 0

    def test_interactive_never_starved_by_batch_flood(self):
        # A fleet of batch statistics jobs saturates the cluster while a
        # trickle of interactive point queries arrives.  The weighted
        # fair quota must keep rejecting batch work, never interactive.
        trace = generate_trace(
            SPEC,
            WorkloadParams(
                n_jobs=50,
                span=60.0,
                frac_batched=0.8,
                frac_tracking=0.0,
                seed=13,
            ),
        )
        cfg = EngineConfig(
            cost=CostModel(t_b=0.5),
            overload=overload_cfg(
                max_queue_depth=60,
                client_rate=100.0,
                client_burst=100.0,
                quota_enforce_fraction=0.25,
                shed_policy="reject-newest",
            ),
        )
        result = run_trace(trace, "jaws2", cfg)
        rejected = result.overload["rejected_by_class"]
        assert rejected.get("batch", 0) > 0
        assert rejected.get("interactive", 0) == 0
        n_interactive = sum(
            j.n_queries for j in trace.jobs if j.client_class == "interactive"
        )
        assert len(result.class_response_times["interactive"]) == n_interactive

    def test_crash_resume_mid_burst_bit_identical(self, tmp_path):
        trace = small_flash_trace()
        # The same (enabled) fault config on both sides so the two runs
        # carry identical injectors and degraded-mode summaries; the
        # crash run only adds the armed coordinator-crash point.
        faults = FaultConfig(seed=5, transient_fault_rate=0.02)
        cfg = protected_engine(faults=faults)
        baseline_sim = Simulator(trace, [make_scheduler("jaws2", trace, cfg)], cfg)
        baseline = baseline_sim.run()
        assert baseline.rejected_jobs > 0  # the crash window covers real decisions
        crash_at = baseline_sim.event_index // 2

        ckpt = CheckpointConfig(directory=str(tmp_path / "ckpt"), every_events=20)
        crash_cfg = protected_engine(
            faults=dataclasses.replace(faults, coordinator_crash_at=crash_at),
            checkpoint=ckpt,
        )
        sim = Simulator(trace, [make_scheduler("jaws2", trace, crash_cfg)], crash_cfg)
        with pytest.raises(CoordinatorCrash):
            sim.run()
        resumed = Simulator.restore(tmp_path / "ckpt")
        assert resumed.event_index <= crash_at
        result = resumed.run()
        assert resumed.event_index == baseline_sim.event_index
        assert_identical(baseline, result)

    def test_crash_resume_in_shedding_mode_restores_overload_state(self, tmp_path):
        """Crash while brownout is in SHEDDING mode: the restored
        snapshot must carry token-bucket levels, per-class quota slots
        and EWMA signal history bit-identically, and the resumed run
        must match the uninterrupted baseline."""
        trace = small_flash_trace()
        faults = FaultConfig(seed=5, transient_fault_rate=0.02)
        cfg = protected_engine(faults=faults)

        # Probe run: find the first event index at which the brownout
        # controller sits in SHEDDING mode (determinism carries the
        # index over to the crash run below).
        probe = Simulator(trace, [make_scheduler("jaws2", trace, cfg)], cfg)
        shedding_at: list[int] = []
        probe_dispatch = probe._dispatch

        def spy(ev):
            probe_dispatch(ev)
            if not shedding_at and probe.overload.brownout.mode is Mode.SHEDDING:
                shedding_at.append(probe.event_index)

        probe._dispatch = spy
        baseline = probe.run()
        assert shedding_at, "scenario never entered SHEDDING mode"
        crash_at = shedding_at[0] + 5  # a few events into the episode

        ckpt = CheckpointConfig(directory=str(tmp_path / "ckpt"), every_events=20)
        crash_cfg = protected_engine(
            faults=dataclasses.replace(faults, coordinator_crash_at=crash_at),
            checkpoint=ckpt,
        )
        sim = Simulator(trace, [make_scheduler("jaws2", trace, crash_cfg)], crash_cfg)
        with pytest.raises(CoordinatorCrash):
            sim.run()
        restored = Simulator.restore(tmp_path / "ckpt")

        # Reference: a fresh run crashed exactly at the snapshot point
        # the restore loaded; its live overload state is what the
        # snapshot must reproduce field-for-field.
        snap_index = restored.event_index
        ref_cfg = protected_engine(
            faults=dataclasses.replace(faults, coordinator_crash_at=snap_index),
        )
        ref = Simulator(trace, [make_scheduler("jaws2", trace, ref_cfg)], ref_cfg)
        if snap_index > 0:
            with pytest.raises(CoordinatorCrash):
                ref.run()
        r_ov, x_ov = restored.overload, ref.overload
        assert r_ov.admission.limiter._buckets == x_ov.admission.limiter._buckets
        assert r_ov.class_slots == x_ov.class_slots
        assert sorted(r_ov.pending) == sorted(x_ov.pending)
        assert r_ov.brownout.mode is x_ov.brownout.mode
        assert r_ov.brownout.queue_signal == x_ov.brownout.queue_signal
        assert r_ov.brownout.response_signal == x_ov.brownout.response_signal
        assert r_ov.brownout.transitions == x_ov.brownout.transitions
        assert r_ov.brownout._mode_since == x_ov.brownout._mode_since

        # And the resumed run replays through the SHEDDING episode to a
        # result bit-identical with the uninterrupted baseline.
        assert_identical(baseline, restored.run())


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------
class TestOverloadCLI:
    @pytest.fixture
    def trace_file(self, tmp_path):
        from repro.cli import main

        path = tmp_path / "t.npz"
        rc = main(
            ["trace", "generate", "--out", str(path), "--jobs", "15", "--span",
             "60", "--seed", "3"]
        )
        assert rc == 0
        return path

    def test_run_with_overload_flag(self, trace_file, capsys):
        from repro.cli import main

        rc = main(
            ["run", "--trace", str(trace_file), "--overload", "--max-queue-depth",
             "8", "--client-rate", "2"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "overload protection" in out
        assert "admission_rate" in out

    def test_overload_subcommand_compares_three_runs(self, trace_file, capsys):
        from repro.cli import main

        rc = main(
            ["overload", "--trace", str(trace_file), "--flash-crowd", "4",
             "--max-queue-depth", "8"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "baseline" in out
        assert "protected" in out
        assert "unprotected" in out

    def test_bad_shed_policy_rejected_at_parse_time(self, trace_file):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(
                ["overload", "--trace", str(trace_file), "--shed-policy",
                 "coin-flip"]
            )


# ---------------------------------------------------------------------------
# Slow soak: flash crowds x disk faults x coordinator crashes
# ---------------------------------------------------------------------------
@pytest.mark.slow
class TestOverloadSoak:
    POINTS = 6

    FAULTS = FaultConfig(
        seed=11,
        transient_fault_rate=0.05,
        permanent_loss_rate=0.01,
        slow_read_rate=0.05,
    )

    def build(self, trace, *, checkpoint=None, crash_at=None):
        cfg = protected_engine(
            faults=dataclasses.replace(self.FAULTS, coordinator_crash_at=crash_at),
            checkpoint=checkpoint or CheckpointConfig(),
            sanitize=True,
        )
        return Simulator(trace, [make_scheduler("jaws2", trace, cfg)], cfg)

    def test_crash_points_under_faulty_flash_crowd(self, tmp_path):
        trace = small_flash_trace()
        baseline_sim = self.build(trace)
        baseline = baseline_sim.run()
        total = baseline_sim.event_index
        assert baseline.rejected_jobs > 0
        assert total > self.POINTS

        rng = random.Random("overload-soak")
        for crash_at in rng.sample(range(1, total), self.POINTS):
            ckpt_dir = tmp_path / f"crash-{crash_at}"
            checkpoint = CheckpointConfig(directory=str(ckpt_dir), every_events=25)
            sim = self.build(trace, checkpoint=checkpoint, crash_at=crash_at)
            with pytest.raises(CoordinatorCrash):
                sim.run()
            resumed = Simulator.restore(ckpt_dir)
            assert resumed.event_index <= crash_at
            result = resumed.run()
            assert resumed.event_index == total
            assert_identical(baseline, result)
