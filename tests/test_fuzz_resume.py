"""Crash-resumable fuzz campaigns (DESIGN.md §13).

The contract: a campaign killed at *any* point resumes from its journal
and produces a summary **byte-identical** to an uninterrupted run's —
completed scenarios are never re-executed, and the merged output is
indistinguishable from one continuous campaign.

Fast tests simulate the interruption by truncating a finished journal
(keeping the header plus a prefix of records — exactly what a SIGKILL
leaves behind) and counting how many scenarios the resumed campaign
actually re-executes.  The slow test does it for real: it SIGKILLs a
``repro fuzz`` CLI process mid-campaign and diffs the resumed summary
against an uninterrupted reference, byte for byte (the CI
``interrupt-soak`` job repeats that end-to-end).
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.errors import JournalError
from repro.fuzz import campaign as campaign_module
from repro.fuzz.campaign import run_campaign
from repro.fuzz.runner import execute_scenario

SEED, RUNS = 3, 5


@pytest.fixture(scope="module")
def reference():
    """One uninterrupted campaign: the byte-identity yardstick."""
    result = run_campaign(seed=SEED, runs=RUNS, jobs=1, quick=True)
    return result.summary_json()


def _truncate_journal(path: Path, keep_records: int) -> None:
    """Keep the header plus the first ``keep_records`` task records —
    the on-disk state a SIGKILL after N completions leaves behind."""
    lines = path.read_text().splitlines(keepends=True)
    path.write_text("".join(lines[: 1 + keep_records]))


def _counting(counter):
    def wrapper(spec):
        counter.append(spec.digest())
        return execute_scenario(spec)

    return wrapper


def test_journaled_campaign_matches_unjournaled(tmp_path, reference):
    journal = tmp_path / "campaign.jsonl"
    result = run_campaign(seed=SEED, runs=RUNS, jobs=1, quick=True, journal_path=journal)
    assert result.summary_json() == reference
    assert result.resumed_scenarios == 0
    assert journal.exists()


def test_resume_skips_completed_scenarios(tmp_path, reference, monkeypatch):
    journal = tmp_path / "campaign.jsonl"
    run_campaign(seed=SEED, runs=RUNS, jobs=1, quick=True, journal_path=journal)
    _truncate_journal(journal, keep_records=2)

    executed = []
    monkeypatch.setattr(campaign_module, "execute_scenario", _counting(executed))
    resumed = run_campaign(
        seed=SEED, runs=RUNS, jobs=1, quick=True, journal_path=journal
    )
    assert resumed.resumed_scenarios == 2
    assert len(executed) == RUNS - 2  # completed work is never redone
    assert resumed.summary_json() == reference  # byte-identical merge


def test_fully_recorded_campaign_reruns_nothing(tmp_path, reference, monkeypatch):
    journal = tmp_path / "campaign.jsonl"
    run_campaign(seed=SEED, runs=RUNS, jobs=1, quick=True, journal_path=journal)

    executed = []
    monkeypatch.setattr(campaign_module, "execute_scenario", _counting(executed))
    resumed = run_campaign(
        seed=SEED, runs=RUNS, jobs=1, quick=True, journal_path=journal
    )
    assert executed == []
    assert resumed.resumed_scenarios == RUNS
    assert resumed.summary_json() == reference


def test_torn_final_record_is_rerun(tmp_path, reference, monkeypatch):
    journal = tmp_path / "campaign.jsonl"
    run_campaign(seed=SEED, runs=RUNS, jobs=1, quick=True, journal_path=journal)
    _truncate_journal(journal, keep_records=3)
    # SIGKILL mid-append: the 4th record got half-written, no newline.
    with journal.open("a") as fh:
        fh.write('{"d": "deadbeefcafe", "p": {"trunc')

    executed = []
    monkeypatch.setattr(campaign_module, "execute_scenario", _counting(executed))
    resumed = run_campaign(
        seed=SEED, runs=RUNS, jobs=1, quick=True, journal_path=journal
    )
    assert len(executed) == RUNS - 3  # torn record was never durable
    assert resumed.summary_json() == reference


def test_resume_with_different_arguments_refused(tmp_path):
    journal = tmp_path / "campaign.jsonl"
    run_campaign(seed=SEED, runs=2, jobs=1, quick=True, journal_path=journal)
    with pytest.raises(JournalError, match="different campaign"):
        run_campaign(seed=SEED + 1, runs=2, jobs=1, quick=True, journal_path=journal)
    with pytest.raises(JournalError, match="different campaign"):
        run_campaign(seed=SEED, runs=3, jobs=1, quick=True, journal_path=journal)


def test_parallel_resume_matches_serial_reference(tmp_path, reference):
    journal = tmp_path / "campaign.jsonl"
    run_campaign(seed=SEED, runs=RUNS, jobs=2, quick=True, journal_path=journal)
    _truncate_journal(journal, keep_records=2)
    resumed = run_campaign(
        seed=SEED, runs=RUNS, jobs=2, quick=True, journal_path=journal
    )
    assert resumed.resumed_scenarios == 2
    assert resumed.summary_json() == reference


def test_harness_failure_salvages_and_resumes(tmp_path, monkeypatch):
    """A scenario whose execution blows up at the harness level becomes
    a typed ``harness`` failure — journaled, merged, never shrunk — and
    the resumed summary still reproduces byte-identically."""
    poison = {}

    def flaky(spec):
        if not poison:
            poison["digest"] = spec.digest()
            raise OSError("simulated harness blow-up")
        return execute_scenario(spec)

    monkeypatch.setattr(campaign_module, "execute_scenario", flaky)
    journal = tmp_path / "campaign.jsonl"
    result = run_campaign(seed=SEED, runs=3, jobs=1, quick=True, journal_path=journal)
    harness = [
        o for o in result.outcomes
        if o.failure is not None and o.failure.kind == "harness"
    ]
    assert len(harness) == 1
    assert harness[0].failure.name == "exception"
    assert harness[0].failure.stage == "supervise"
    assert result.reproducers == []  # harness failures are not shrunk

    # Resume replays the recorded failure without re-executing anything.
    executed = []
    monkeypatch.setattr(campaign_module, "execute_scenario", _counting(executed))
    resumed = run_campaign(seed=SEED, runs=3, jobs=1, quick=True, journal_path=journal)
    assert executed == []
    assert resumed.summary_json() == result.summary_json()


# ---------------------------------------------------------------------------
# The real thing: SIGKILL the driver mid-campaign, resume, diff bytes.
# ---------------------------------------------------------------------------
def _fuzz_cli(journal: Path, summary: Path, runs: int = 6):
    return [
        sys.executable, "-m", "repro.cli", "fuzz",
        "--seed", str(SEED), "--runs", str(runs), "--quick", "--jobs", "2",
        "--resume-journal", str(journal),
        "--out-dir", str(journal.parent / "reproducers"),
        "--summary-out", str(summary),
    ]


def _count_records(journal: Path) -> int:
    if not journal.exists():
        return 0
    text = journal.read_text()
    return max(0, len([ln for ln in text.split("\n") if ln]) - 1)  # minus header


@pytest.mark.slow
def test_sigkill_mid_campaign_then_resume_byte_identical(tmp_path):
    runs = 6
    env = dict(os.environ)
    # Uninterrupted reference, its own journal.
    ref_summary = tmp_path / "ref-summary.json"
    subprocess.run(
        _fuzz_cli(tmp_path / "ref.jsonl", ref_summary, runs),
        check=True, env=env, timeout=600,
    )

    # Victim campaign: SIGKILL once >=2 scenarios are durably journaled.
    journal = tmp_path / "victim.jsonl"
    victim = subprocess.Popen(
        _fuzz_cli(journal, tmp_path / "victim-summary.json", runs),
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    try:
        # Bounded poll (~300 s worth of 50 ms sleeps), no wall-clock read.
        for _ in range(6000):
            if _count_records(journal) >= 2:
                break
            if victim.poll() is not None:
                pytest.skip("campaign finished before the kill landed")
            time.sleep(0.05)
        else:
            raise AssertionError("no journal records appeared in time")
        victim.send_signal(signal.SIGKILL)
        victim.wait(timeout=60)
    finally:
        if victim.poll() is None:
            victim.kill()
            victim.wait(timeout=60)
    survived = _count_records(journal)
    assert survived >= 2
    assert survived < runs, "kill landed too late to prove anything"

    # Resume to completion and diff the summaries byte for byte.
    resumed_summary = tmp_path / "resumed-summary.json"
    done = subprocess.run(
        _fuzz_cli(journal, resumed_summary, runs),
        check=True, env=env, timeout=600, capture_output=True, text=True,
    )
    assert "resumed" in done.stderr
    assert resumed_summary.read_bytes() == ref_summary.read_bytes()
    # Sanity: both are valid canonical JSON for the same campaign.
    doc = json.loads(ref_summary.read_text())
    assert doc["runs"] == runs and doc["seed"] == SEED
