"""Adversarial scenario fuzzer (``repro.fuzz``).

Covers the spec value-object contract, seeded scenario generation,
chaos oracles, deterministic shrinking (including the planted-bug
end-to-end acceptance path: original spec -> typed failure -> minimal
reproducer -> CLI replay), campaign byte-identity across repeats and
across process fan-out, and the fuzz CLI's exit-code contract.

The 200-scenario nightly campaign is ``slow``-marked and excluded from
the default run (CI runs it in the scheduled fuzz job).
"""

import json
import types

import pytest

from repro.config import EngineConfig
from repro.fuzz import (
    ENTRY_KINDS,
    ORACLE_NAMES,
    ScenarioEntry,
    ScenarioSpec,
    build_scenario,
    execute_scenario,
    load_reproducer,
    materialize,
    replay_file,
    run_campaign,
    shrink,
)
from repro.fuzz.oracles import (
    check_conservation,
    check_metric_sanity,
    normalize_result,
    results_equivalent,
)
from repro.fuzz.runner import PLANT_BUG_ENV
from repro.fuzz.spec import SPEC_FORMAT_VERSION


def tiny_spec(**kwargs):
    """The smallest scenario that exercises the engine: one job class."""
    defaults = dict(
        seed=3,
        scheduler="jaws2",
        n_jobs=4,
        span=30.0,
        n_timesteps=6,
        atoms_per_axis=4,
        entries=(ScenarioEntry("query_class", {"name": "batched"}),),
    )
    defaults.update(kwargs)
    return ScenarioSpec(**defaults)


def planted_spec():
    """Eight entries, two of which (flash_crowd + disk_faults) trigger
    the planted bug: the shrinker must get from 8 down to exactly 2."""
    return tiny_spec(
        entries=(
            ScenarioEntry("query_class", {"name": "tracking"}),
            ScenarioEntry("query_class", {"name": "oneoff"}),
            ScenarioEntry(
                "flash_crowd",
                {"factor": 3.0, "start_frac": 0.2, "duration_frac": 0.1, "seed": 11},
            ),
            ScenarioEntry(
                "disk_faults",
                {"transient_rate": 0.02, "loss_rate": 0.0, "slow_rate": 0.0, "seed": 5},
            ),
            ScenarioEntry("morton_hostile", {"n_jobs": 3, "stride_atoms": 1, "seed": 1}),
            ScenarioEntry(
                "regime_shift",
                {"at_frac": 0.5, "n_jobs": 4, "frac_tracking": 0.5, "seed": 2},
            ),
            ScenarioEntry("quota_starvation", {"n_jobs": 4, "n_users": 1, "seed": 3}),
            ScenarioEntry("gating_deadlock", {"n_campaigns": 2, "length": 2, "seed": 4}),
        )
    )


# ---------------------------------------------------------------------------
# Spec value object
# ---------------------------------------------------------------------------
class TestSpec:
    def test_json_round_trip(self):
        spec = planted_spec()
        assert ScenarioSpec.from_json(spec.to_json()) == spec
        assert ScenarioSpec.from_json(json.loads(spec.canonical())) == spec

    def test_digest_is_stable_and_content_addressed(self):
        spec = planted_spec()
        assert spec.digest() == spec.digest()
        assert len(spec.digest()) == 12
        assert spec.with_(seed=spec.seed + 1).digest() != spec.digest()
        assert spec.with_(entries=spec.entries[:-1]).digest() != spec.digest()

    def test_unknown_entry_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario entry kind"):
            ScenarioEntry("warp_core_breach", {})

    def test_unsupported_format_version_rejected(self):
        data = tiny_spec().to_json()
        data["format"] = SPEC_FORMAT_VERSION + 1
        with pytest.raises(ValueError, match="unsupported scenario spec format"):
            ScenarioSpec.from_json(data)

    def test_entry_queries(self):
        spec = planted_spec()
        assert spec.has("flash_crowd")
        assert not spec.has("overload")
        assert spec.first("disk_faults").get("transient_rate") == 0.02
        assert len(spec.entries_of("query_class")) == 2


# ---------------------------------------------------------------------------
# Scenario generation
# ---------------------------------------------------------------------------
class TestBuild:
    def test_same_seed_same_spec(self):
        for seed in (0, 7, 12345):
            assert build_scenario(seed) == build_scenario(seed)
            assert build_scenario(seed, quick=True) == build_scenario(seed, quick=True)

    def test_distinct_seeds_distinct_specs(self):
        canon = {build_scenario(s, quick=True).canonical() for s in range(8)}
        assert len(canon) == 8

    def test_quick_bounds_and_base_class(self):
        for seed in range(12):
            spec = build_scenario(seed, quick=True)
            assert 8 <= spec.n_jobs < 15
            assert 60.0 <= spec.span <= 120.0
            assert spec.n_timesteps == 6
            assert spec.entries_of("query_class"), "a base job class is mandatory"
            assert all(e.kind in ENTRY_KINDS for e in spec.entries)

    def test_retry_gaming_only_with_overload(self):
        for seed in range(40):
            spec = build_scenario(seed, quick=True)
            if spec.has("retry_gaming"):
                assert spec.has("overload")

    def test_materialize_deterministic(self):
        spec = build_scenario(5, quick=True)
        a, b = materialize(spec), materialize(spec)
        assert a.trace.n_queries == b.trace.n_queries
        assert [j.job_id for j in a.trace.jobs] == [j.job_id for j in b.trace.jobs]
        assert [j.submit_time for j in a.trace.jobs] == [
            j.submit_time for j in b.trace.jobs
        ]
        assert a.crash_window == b.crash_window
        assert a.engine.sanitize and b.engine.sanitize


# ---------------------------------------------------------------------------
# Oracles
# ---------------------------------------------------------------------------
def fake_result(**overrides):
    """Just enough RunResult surface for check_metric_sanity."""
    base = dict(
        makespan=10.0,
        response_times=[0.5, 1.0],
        throughput_qps=1.0,
        runs=(),
        alpha_histories=None,
        alpha_history=[0.5],
        availability=1.0,
        admission_rate=1.0,
        cache_hit_ratio=0.3,
    )
    base.update(overrides)
    return types.SimpleNamespace(**base)


class TestOracles:
    def test_clean_run_passes_conservation_and_sanity(self):
        spec = tiny_spec()
        outcome = execute_scenario(spec)
        assert outcome.ok, outcome.failure
        assert outcome.oracles_checked == (
            "no_starvation",
            "conservation",
            "metric_sanity",
        )
        assert set(outcome.oracles_checked) <= set(ORACLE_NAMES)

    def test_conservation_detects_unaccounted_queries(self):
        scenario = materialize(tiny_spec())
        from repro.engine.runner import run_trace

        result = run_trace(scenario.trace, "jaws2", engine=scenario.engine)
        assert check_conservation(scenario.trace, result) is None
        bigger = materialize(tiny_spec(n_jobs=8)).trace
        detail = check_conservation(bigger, result)
        assert detail is not None and "terminal states account for" in detail

    @pytest.mark.parametrize(
        "overrides, fragment",
        [
            (dict(makespan=float("nan")), "makespan"),
            (dict(response_times=[float("inf")]), "non-finite response"),
            (dict(response_times=[-0.1]), "negative response"),
            (dict(response_times=[11.0]), "exceeds makespan"),
            (dict(throughput_qps=1e12), "exceeds 1/t_m"),
            (dict(alpha_history=[1.5]), "alpha"),
            (dict(availability=1.2), "availability"),
            (dict(admission_rate=-0.1), "admission_rate"),
        ],
    )
    def test_metric_sanity_catches_impossible_values(self, overrides, fragment):
        engine = EngineConfig()
        assert check_metric_sanity(fake_result(), engine) is None
        detail = check_metric_sanity(fake_result(**overrides), engine)
        assert detail is not None and fragment in detail

    def test_results_equivalent_ignores_wall_clock_only(self):
        scenario = materialize(tiny_spec())
        from repro.engine.runner import run_trace

        a = run_trace(scenario.trace, "jaws2", engine=scenario.engine)
        b = run_trace(scenario.trace, "jaws2", engine=scenario.engine)
        # Wall-clock overheads differ between the two runs, yet the
        # normalized comparison must treat them as equivalent.
        assert results_equivalent(a, b) is None
        norm = normalize_result(a)
        assert "gating_overhead_ns" not in norm
        assert "overhead_ns" not in norm["cache"]
        assert "crash_effective" not in norm["faults"]

    def test_results_equivalent_reports_first_divergence(self):
        scenario_a = materialize(tiny_spec())
        scenario_b = materialize(tiny_spec(seed=4))
        from repro.engine.runner import run_trace

        a = run_trace(scenario_a.trace, "jaws2", engine=scenario_a.engine)
        b = run_trace(scenario_b.trace, "jaws2", engine=scenario_b.engine)
        detail = results_equivalent(a, b)
        assert detail is not None and detail.startswith("result")


# ---------------------------------------------------------------------------
# Crash/resume stage through the runner
# ---------------------------------------------------------------------------
def test_coordinator_crash_scenario_passes_crash_oracles():
    spec = tiny_spec(
        n_jobs=6,
        entries=(
            ScenarioEntry("query_class", {"name": "batched"}),
            ScenarioEntry(
                "coordinator_crash", {"window_lo_frac": 0.3, "window_hi_frac": 0.9}
            ),
        ),
    )
    outcome = execute_scenario(spec)
    assert outcome.ok, outcome.failure
    assert "crash_effective" in outcome.oracles_checked
    assert "crash_resume" in outcome.oracles_checked


# ---------------------------------------------------------------------------
# Shrinking
# ---------------------------------------------------------------------------
class TestShrink:
    def test_ddmin_to_exact_culprit_pair(self):
        spec = planted_spec()

        def still_fails(s):
            return s.has("flash_crowd") and s.has("disk_faults")

        minimal, evals = shrink(spec, still_fails)
        assert {e.kind for e in minimal.entries} == {"flash_crowd", "disk_faults"}
        assert len(minimal.entries) == 2
        assert evals > 0

    def test_shrink_is_deterministic(self):
        spec = planted_spec()

        def still_fails(s):
            return s.has("flash_crowd") and s.has("disk_faults")

        a, evals_a = shrink(spec, still_fails)
        b, evals_b = shrink(spec, still_fails)
        assert a.canonical() == b.canonical()
        assert evals_a == evals_b

    def test_numeric_reduction_halves_toward_floors(self):
        spec = planted_spec().with_(n_jobs=16, span=120.0)
        minimal, _ = shrink(spec, lambda s: s.has("flash_crowd"))
        assert minimal.n_jobs == 4  # halved 16 -> 8 -> 4, floor reached
        assert minimal.span == 30.0
        assert [e.kind for e in minimal.entries] == ["flash_crowd"]
        assert minimal.first("flash_crowd").get("factor") == 1.5  # floor

    def test_budget_zero_returns_original(self):
        spec = planted_spec()
        minimal, evals = shrink(spec, lambda s: True, max_evals=0)
        assert minimal == spec
        assert evals == 0

    def test_predicate_exception_counts_as_not_failing(self):
        spec = planted_spec()

        def touchy(s):
            if not s.has("disk_faults"):
                raise RuntimeError("builder rejects this candidate")
            return True

        minimal, _ = shrink(spec, touchy)
        assert [e.kind for e in minimal.entries] == ["disk_faults"]


# ---------------------------------------------------------------------------
# Planted-bug acceptance path: fail -> shrink -> reproducer -> CLI replay
# ---------------------------------------------------------------------------
class TestPlantedBugEndToEnd:
    def test_bug_only_fires_with_env_and_both_features(self, monkeypatch):
        spec = planted_spec()
        monkeypatch.delenv(PLANT_BUG_ENV, raising=False)
        assert execute_scenario(spec).ok
        monkeypatch.setenv(PLANT_BUG_ENV, "1")
        outcome = execute_scenario(spec)
        assert outcome.failure is not None
        assert outcome.failure.signature == ("oracle", "planted_bug")
        # Either feature alone is innocent: the pair is the bug.
        solo = spec.with_(
            entries=tuple(e for e in spec.entries if e.kind != "disk_faults")
        )
        assert execute_scenario(solo).ok

    def test_shrink_to_quarter_and_replay_via_cli(self, monkeypatch, tmp_path, capsys):
        monkeypatch.setenv(PLANT_BUG_ENV, "1")
        spec = planted_spec()
        outcome = execute_scenario(spec)
        signature = outcome.failure.signature

        def still_fails(candidate):
            replayed = execute_scenario(candidate)
            return (
                replayed.failure is not None
                and replayed.failure.signature == signature
            )

        minimal, evals = shrink(spec, still_fails, max_evals=150)
        # Acceptance bar: the reproducer is <= 25% of the original spec.
        assert len(minimal.entries) <= len(spec.entries) // 4
        assert {e.kind for e in minimal.entries} == {"flash_crowd", "disk_faults"}

        path = tmp_path / f"repro-{minimal.digest()}.json"
        path.write_text(
            json.dumps(
                {
                    "format": SPEC_FORMAT_VERSION,
                    "spec": minimal.to_json(),
                    "spec_digest": minimal.digest(),
                    "failure": outcome.failure.to_json(),
                },
                indent=2,
            )
        )
        loaded_spec, recorded = load_reproducer(path)
        assert loaded_spec == minimal
        assert (recorded["kind"], recorded["name"]) == signature
        replayed = replay_file(path)
        assert replayed.failure is not None
        assert replayed.failure.signature == signature

        from repro.cli import main

        assert main(["fuzz", "repro", str(path)]) == 2  # still reproduces
        out = json.loads(capsys.readouterr().out)
        assert out["failure"]["name"] == "planted_bug"
        monkeypatch.delenv(PLANT_BUG_ENV)
        assert main(["fuzz", "repro", str(path)]) == 0  # "bug" fixed


# ---------------------------------------------------------------------------
# Campaigns
# ---------------------------------------------------------------------------
class TestCampaign:
    def test_repeat_campaigns_byte_identical(self):
        a = run_campaign(seed=1, runs=3, quick=True)
        b = run_campaign(seed=1, runs=3, quick=True)
        assert a.summary_json() == b.summary_json()
        assert not a.failures

    def test_process_fanout_matches_serial(self):
        serial = run_campaign(seed=1, runs=3, quick=True)
        fanned = run_campaign(seed=1, runs=3, jobs=2, quick=True)
        assert serial.summary_json() == fanned.summary_json()

    def test_coverage_ledger_shape(self):
        result = run_campaign(seed=1, runs=3, quick=True)
        ledger = result.coverage()
        assert ledger, "three scenarios must cover at least one feature"
        for feature, row in ledger.items():
            assert feature in ENTRY_KINDS
            assert row, f"feature {feature} executed but no oracle recorded"
            for oracle, count in row.items():
                assert oracle in ORACLE_NAMES
                assert count >= 1

    def test_failing_campaign_writes_deduped_reproducer(self, monkeypatch, tmp_path):
        import repro.fuzz.campaign as campaign_module

        monkeypatch.setenv(PLANT_BUG_ENV, "1")
        # Every "generated" scenario is the same planted-bug spec: two
        # failures, one signature, exactly one reproducer.
        monkeypatch.setattr(
            campaign_module, "build_scenario", lambda seed, quick=False: planted_spec()
        )
        result = run_campaign(
            seed=9, runs=2, quick=True, out_dir=tmp_path, shrink_budget=150
        )
        assert len(result.failures) == 2
        assert len(result.reproducers) == 1
        (repro_path,) = result.reproducer_paths
        data = json.loads(repro_path.read_text())
        assert data["failure"]["name"] == "planted_bug"
        assert data["shrunk_entries"] <= data["original_entries"] // 4
        replayed = replay_file(repro_path)
        assert replayed.failure is not None
        assert replayed.failure.name == "planted_bug"


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
class TestCli:
    def test_clean_campaign_exits_zero_with_canonical_summary(self, tmp_path, capsys):
        from repro.cli import main

        argv = [
            "fuzz",
            "--seed",
            "1",
            "--runs",
            "2",
            "--quick",
            "--out-dir",
            str(tmp_path / "reproducers"),
            "--summary-out",
        ]
        assert main(argv + [str(tmp_path / "a.json")]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["runs"] == 2
        assert summary["n_failures"] == 0
        assert not (tmp_path / "reproducers").exists()  # clean -> nothing written
        assert main(argv + [str(tmp_path / "b.json")]) == 0
        capsys.readouterr()
        assert (tmp_path / "a.json").read_bytes() == (tmp_path / "b.json").read_bytes()

    def test_failing_campaign_exits_one(self, monkeypatch, tmp_path, capsys):
        import repro.fuzz.campaign as campaign_module
        from repro.cli import main

        monkeypatch.setenv(PLANT_BUG_ENV, "1")
        monkeypatch.setattr(
            campaign_module, "build_scenario", lambda seed, quick=False: planted_spec()
        )
        rc = main(
            [
                "fuzz",
                "--seed",
                "9",
                "--runs",
                "1",
                "--quick",
                "--out-dir",
                str(tmp_path),
                "--shrink-budget",
                "150",
            ]
        )
        assert rc == 1
        summary = json.loads(capsys.readouterr().out)
        assert summary["n_failures"] == 1
        assert list(tmp_path.glob("repro-*.json"))


# ---------------------------------------------------------------------------
# Nightly campaign (CI fuzz job; excluded from the default run)
# ---------------------------------------------------------------------------
@pytest.mark.slow
def test_nightly_campaign_finds_nothing_on_main():
    """The acceptance soak: 200 full-size scenarios, zero violations."""
    result = run_campaign(seed=2026, runs=200, quick=False)
    assert not result.failures, [o.failure.to_json() for o in result.failures]
    # Every stressor the builder can produce appeared somewhere in 200
    # draws, and each was watched by at least the always-on oracles.
    assert set(result.coverage()) == set(ENTRY_KINDS)
