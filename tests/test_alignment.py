"""Tests for Needleman–Wunsch job alignment."""

from itertools import combinations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.alignment import align_jobs, alignment_score, overlap_matrix


def fs(*atoms):
    return frozenset(atoms)


class TestOverlapMatrix:
    def test_basic(self):
        s = overlap_matrix([fs(1, 2), fs(3)], [fs(2), fs(4)])
        assert s.tolist() == [[True, False], [False, False]]

    def test_empty_sets_never_share(self):
        s = overlap_matrix([fs()], [fs()])
        assert not s.any()


class TestAlignJobs:
    def test_identical_jobs_fully_aligned(self):
        a = [fs(1), fs(2), fs(3)]
        assert align_jobs(a, a) == [(0, 0), (1, 1), (2, 2)]

    def test_paper_figure3_style(self):
        """Two jobs sharing a sparse subsequence align monotonically."""
        a = [fs(1), fs(2), fs(3), fs(4)]
        b = [fs(1), fs(9), fs(3), fs(8), fs(4)]
        pairs = align_jobs(a, b)
        assert (0, 0) in pairs and (2, 2) in pairs and (3, 4) in pairs

    def test_offset_alignment_uses_gaps(self):
        a = [fs(10), fs(1), fs(2)]
        b = [fs(1), fs(2)]
        assert align_jobs(a, b) == [(1, 0), (2, 1)]

    def test_no_sharing(self):
        assert align_jobs([fs(1)], [fs(2)]) == []

    def test_empty_jobs(self):
        assert align_jobs([], [fs(1)]) == []
        assert align_jobs([fs(1)], []) == []

    def test_monotone_and_unique(self):
        a = [fs(i) for i in (1, 2, 1, 2, 1)]
        b = [fs(1), fs(2)]
        pairs = align_jobs(a, b)
        # strictly increasing in both coordinates, <= 1 edge per query
        assert all(p1[0] < p2[0] and p1[1] < p2[1] for p1, p2 in zip(pairs, pairs[1:]))
        assert len({i for i, _ in pairs}) == len(pairs)
        assert len({j for _, j in pairs}) == len(pairs)

    def test_crossing_resolved_to_best(self):
        # a = [X, Y], b = [Y, X]: only one edge can survive.
        a = [fs(1), fs(2)]
        b = [fs(2), fs(1)]
        assert len(align_jobs(a, b)) == 1


def brute_force_best(a, b):
    """Max monotone matching by exhaustive search (tiny inputs)."""
    n, m = len(a), len(b)
    best = 0
    idx_pairs = [
        (i, j) for i in range(n) for j in range(m) if a[i] and not a[i].isdisjoint(b[j])
    ]
    for size in range(len(idx_pairs), 0, -1):
        for combo in combinations(idx_pairs, size):
            is_ = [c[0] for c in combo]
            js_ = [c[1] for c in combo]
            if sorted(is_) == is_ and sorted(js_) == js_:
                if len(set(is_)) == size and len(set(js_)) == size:
                    if all(
                        combo[x][0] < combo[x + 1][0] and combo[x][1] < combo[x + 1][1]
                        for x in range(size - 1)
                    ):
                        return size
        if best:
            break
    return 0


ATOM_SET = st.frozensets(st.integers(0, 5), max_size=3)


class TestOptimality:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(ATOM_SET, min_size=1, max_size=5),
        st.lists(ATOM_SET, min_size=1, max_size=5),
    )
    def test_matches_brute_force(self, a, b):
        assert alignment_score(a, b) == brute_force_best(a, b)

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(ATOM_SET, min_size=1, max_size=6),
        st.lists(ATOM_SET, min_size=1, max_size=6),
    )
    def test_symmetry(self, a, b):
        assert alignment_score(a, b) == alignment_score(b, a)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(ATOM_SET, min_size=1, max_size=6))
    def test_self_alignment_counts_nonempty(self, a):
        expected = sum(1 for s in a if s)
        assert alignment_score(a, a) == expected

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(ATOM_SET, min_size=1, max_size=6),
        st.lists(ATOM_SET, min_size=1, max_size=6),
    )
    def test_every_pair_shares_data(self, a, b):
        for i, j in align_jobs(a, b):
            assert not a[i].isdisjoint(b[j])
