"""Tests for DatasetSpec and AtomMapper."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grid.atoms import AtomMapper
from repro.grid.dataset import DatasetSpec


class TestDatasetSpec:
    def test_production_geometry(self):
        spec = DatasetSpec()  # paper defaults
        assert spec.atoms_per_axis == 16
        assert spec.atoms_per_timestep == 4096
        assert spec.atom_bytes == 8 << 20

    def test_small_helper(self):
        spec = DatasetSpec.small(n_timesteps=8, atoms_per_axis=4)
        assert spec.atoms_per_timestep == 64
        assert spec.n_atoms == 512
        assert spec.atom_side == 64

    def test_validation(self):
        with pytest.raises(ValueError):
            DatasetSpec(grid_side=100, atom_side=64)
        with pytest.raises(ValueError):
            DatasetSpec(grid_side=192, atom_side=64)  # 3 atoms/axis
        with pytest.raises(ValueError):
            DatasetSpec(n_timesteps=0)
        with pytest.raises(ValueError):
            DatasetSpec(halo=64)

    def test_duration(self):
        spec = DatasetSpec(n_timesteps=11, dt=0.5)
        assert spec.duration == pytest.approx(5.0)


class TestAtomIdPacking:
    spec = DatasetSpec.small(n_timesteps=5, atoms_per_axis=4)

    def test_roundtrip(self):
        for ts in range(self.spec.n_timesteps):
            for m in (0, 1, 63):
                a = self.spec.atom_id(ts, m)
                assert self.spec.atom_timestep(a) == ts
                assert self.spec.atom_morton(a) == m

    def test_ids_unique(self):
        ids = {
            self.spec.atom_id(ts, m)
            for ts in range(self.spec.n_timesteps)
            for m in range(self.spec.atoms_per_timestep)
        }
        assert len(ids) == self.spec.n_atoms

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            self.spec.atom_id(5, 0)
        with pytest.raises(ValueError):
            self.spec.atom_id(0, 64)


class TestAtomMapper:
    spec = DatasetSpec.small(n_timesteps=4, atoms_per_axis=4)
    mapper = AtomMapper(spec)

    def test_wrap_periodic(self):
        pos = np.array([[-1.0, 0.0, 300.0]])
        wrapped = self.mapper.wrap(pos)
        assert 0 <= wrapped[0, 0] < self.spec.grid_side
        assert wrapped[0, 2] == pytest.approx(300.0 - self.spec.grid_side)

    def test_atom_coords_basic(self):
        pos = np.array([[0.0, 64.0, 130.0]])
        np.testing.assert_array_equal(self.mapper.atom_coords(pos), [[0, 1, 2]])

    def test_shape_validated(self):
        with pytest.raises(ValueError):
            self.mapper.atom_coords(np.zeros((3, 2)))

    def test_atom_ids_timestep_offset(self):
        pos = np.array([[1.0, 1.0, 1.0]])
        a0 = self.mapper.atom_ids(pos, 0)[0]
        a1 = self.mapper.atom_ids(pos, 1)[0]
        assert a1 - a0 == self.spec.atoms_per_timestep

    def test_group_by_atom_partitions_everything(self):
        rng = np.random.default_rng(1)
        pos = rng.uniform(0, self.spec.grid_side, (500, 3))
        groups = self.mapper.group_by_atom(pos, 2)
        all_idx = np.concatenate([idx for _, idx in groups])
        assert sorted(all_idx) == list(range(500))

    def test_group_by_atom_morton_sorted(self):
        rng = np.random.default_rng(2)
        pos = rng.uniform(0, self.spec.grid_side, (200, 3))
        groups = self.mapper.group_by_atom(pos, 0)
        atom_ids = [a for a, _ in groups]
        assert atom_ids == sorted(atom_ids)

    def test_group_members_map_back_to_their_atom(self):
        rng = np.random.default_rng(3)
        pos = rng.uniform(0, self.spec.grid_side, (300, 3))
        for atom_id, idx in self.mapper.group_by_atom(pos, 1):
            ids = self.mapper.atom_ids(pos[idx], 1)
            assert (ids == atom_id).all()

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 2**32 - 1))
    def test_group_by_atom_total_positions(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 100))
        pos = rng.uniform(-100, self.spec.grid_side + 100, (n, 3))
        groups = self.mapper.group_by_atom(pos, 0)
        assert sum(len(idx) for _, idx in groups) == n
