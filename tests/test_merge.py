"""Tests for the greedy merge phase and the incremental GatingManager."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.gating import PrecedenceGraph
from repro.core.merge import GatingManager, admit_alignment, build_gating_offline
from repro.core.states import QueryState


def fs(*atoms):
    return frozenset(atoms)


class TestOfflineMerge:
    def test_paper_figure2_scenario(self):
        """Three jobs sharing R3/R4 get aligned so the shared regions
        are co-scheduled (Fig. 2's 33% win scenario)."""
        g = PrecedenceGraph()
        g.add_job(1, [10, 11, 12, 13], [fs(1), fs(2), fs(3), fs(4)])
        g.add_job(2, [20, 21, 22], [fs(5), fs(3), fs(4)])
        g.add_job(3, [30, 31], [fs(3), fs(4)])
        admitted = build_gating_offline(g)
        assert admitted >= 2
        # The R3 queries of all three jobs end up in one clique.
        assert g.partners(12) >= {21} or g.partners(12) >= {30}

    def test_no_sharing_no_edges(self):
        g = PrecedenceGraph()
        g.add_job(0, [0], [fs(1)])
        g.add_job(1, [10], [fs(2)])
        assert build_gating_offline(g) == 0

    def test_deterministic(self):
        def build():
            g = PrecedenceGraph()
            g.add_job(0, [0, 1], [fs(1), fs(2)])
            g.add_job(1, [10, 11], [fs(1), fs(2)])
            g.add_job(2, [20, 21], [fs(2), fs(3)])
            build_gating_offline(g)
            return {q: tuple(sorted(g.partners(q))) for q in (0, 1, 10, 11, 20, 21)}

        assert build() == build()


class TestAdmitAlignment:
    def test_admits_in_order(self):
        g = PrecedenceGraph()
        g.add_job(0, [0, 1], [fs(1), fs(2)])
        g.add_job(1, [10, 11], [fs(1), fs(2)])
        n = admit_alignment(g, 0, 1, [(0, 0), (1, 1)])
        assert n == 2

    def test_stale_indices_skipped(self):
        g = PrecedenceGraph()
        g.add_job(0, [0], [fs(1)])
        g.add_job(1, [10], [fs(1)])
        assert admit_alignment(g, 0, 1, [(0, 5)]) == 0


class TestGatingManager:
    def test_short_jobs_untracked(self):
        mgr = GatingManager(min_job_len=2)
        mgr.add_job(0, [0], [fs(1)])
        assert not mgr.is_tracked(0)

    def test_tracked_job_arrival_flow(self):
        mgr = GatingManager()
        mgr.add_job(0, [0, 1], [fs(1), fs(2)])
        mgr.add_job(1, [10, 11], [fs(1), fs(2)])
        # q0 arrives; its partner q10 has not -> held.
        assert mgr.on_arrival(0) is None
        assert mgr.held_queries() == [0]
        # q10 arrives; the group releases together.
        released = mgr.on_arrival(10)
        assert sorted(released) == [0, 10]

    def test_untracked_partnerless_query_releases_immediately(self):
        mgr = GatingManager()
        mgr.add_job(0, [0, 1], [fs(1), fs(2)])
        # No other jobs: no gating edges; queries release alone.
        assert mgr.on_arrival(0) == [0]

    def test_completion_prunes(self):
        mgr = GatingManager()
        mgr.add_job(0, [0, 1], [fs(1), fs(2)])
        mgr.add_job(1, [10, 11], [fs(1), fs(2)])
        mgr.on_arrival(0)
        mgr.on_arrival(10)
        mgr.on_complete(0)
        assert not mgr.is_tracked(0)
        assert 0 not in mgr.graph

    def test_late_job_aligns_with_remaining_queries_only(self):
        mgr = GatingManager()
        mgr.add_job(0, [0, 1, 2], [fs(1), fs(2), fs(3)])
        # Job 0 finished q0 already.
        mgr.on_arrival(0)
        mgr.on_complete(0)
        mgr.add_job(1, [10, 11], [fs(2), fs(3)])
        # Alignment must pair (1,10) and (2,11), not touch pruned q0.
        assert mgr.graph.partners(1) == frozenset({10})
        assert mgr.graph.partners(2) == frozenset({11})

    def test_release_all_ready_valve(self):
        mgr = GatingManager()
        mgr.add_job(0, [0, 1], [fs(1), fs(2)])
        mgr.add_job(1, [10, 11], [fs(1), fs(2)])
        mgr.on_arrival(0)
        assert mgr.release_all_ready() == [0]
        assert mgr.graph.state(0) is QueryState.QUEUE

    def test_campaign_star_topology(self):
        """Several identical jobs submitted together form cliques per
        step and release together step by step."""
        mgr = GatingManager()
        atoms = [fs(1), fs(2), fs(3)]
        for j in range(3):
            mgr.add_job(j, [10 * j, 10 * j + 1, 10 * j + 2], atoms)
        # First queries of all jobs arrive.
        assert mgr.on_arrival(0) is None
        assert mgr.on_arrival(10) is None
        released = mgr.on_arrival(20)
        assert sorted(released) == [0, 10, 20]


@st.composite
def random_jobs(draw):
    n_jobs = draw(st.integers(2, 5))
    out = []
    for _ in range(n_jobs):
        length = draw(st.integers(2, 5))
        atoms = [
            draw(st.frozensets(st.integers(0, 6), min_size=1, max_size=2))
            for _ in range(length)
        ]
        out.append(atoms)
    return out


class TestManagerLiveness:
    @settings(max_examples=50, deadline=None)
    @given(random_jobs())
    def test_round_robin_arrivals_always_complete(self, jobs):
        """Drive all jobs through the manager with round-robin arrivals;
        everything must complete without force-release."""
        mgr = GatingManager()
        chains = []
        qid = 0
        for j, atoms in enumerate(jobs):
            ids = list(range(qid, qid + len(atoms)))
            qid += len(atoms)
            mgr.add_job(j, ids, atoms)
            chains.append(list(ids))

        frontier = {j: 0 for j in range(len(chains))}
        arrived: set[int] = set()
        queued: set[int] = set()
        done: set[int] = set()
        total = sum(len(c) for c in chains)
        for _ in range(6 * total + 10):
            if len(done) == total:
                break
            # Arrivals: frontier query of each job whose predecessor done.
            for j, chain in enumerate(chains):
                i = frontier[j]
                if i < len(chain) and chain[i] not in arrived:
                    q = chain[i]
                    arrived.add(q)
                    released = mgr.on_arrival(q)
                    if released is not None:
                        queued.update(released)
            # Complete everything queued.
            for q in sorted(queued):
                queued.discard(q)
                mgr.on_complete(q)
                done.add(q)
                for j, chain in enumerate(chains):
                    if frontier[j] < len(chain) and chain[frontier[j]] == q:
                        frontier[j] += 1
        assert len(done) == total, f"stuck at {len(done)}/{total}"
