"""Tests for the synthetic turbulence field and advection."""

import numpy as np
import pytest

from repro.grid.field import SyntheticTurbulence, advect_positions


def make_field(**kw):
    defaults = dict(box_size=512.0, n_modes=24, u_rms=100.0, seed=3)
    defaults.update(kw)
    return SyntheticTurbulence(**defaults)


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticTurbulence(box_size=0)
        with pytest.raises(ValueError):
            SyntheticTurbulence(box_size=10, n_modes=0)
        with pytest.raises(ValueError):
            SyntheticTurbulence(box_size=10, k_min=5, k_max=2)

    def test_deterministic_given_seed(self):
        f1, f2 = make_field(seed=9), make_field(seed=9)
        pts = np.array([[1.0, 2.0, 3.0], [100.0, 50.0, 10.0]])
        np.testing.assert_array_equal(f1.velocity(pts, 0.5), f2.velocity(pts, 0.5))

    def test_seeds_differ(self):
        pts = np.array([[1.0, 2.0, 3.0]])
        assert not np.allclose(
            make_field(seed=1).velocity(pts, 0.0), make_field(seed=2).velocity(pts, 0.0)
        )


class TestFieldPhysics:
    def test_periodicity(self):
        f = make_field()
        pts = np.array([[10.0, 20.0, 30.0]])
        shifted = pts + f.box_size
        np.testing.assert_allclose(
            f.velocity(pts, 1.0), f.velocity(shifted, 1.0), rtol=1e-9, atol=1e-9
        )

    def test_rms_close_to_target(self):
        f = make_field(u_rms=100.0, n_modes=64)
        assert f.rms_velocity(n_samples=20000) == pytest.approx(100.0, rel=0.25)

    def test_divergence_free(self):
        """Central-difference divergence should vanish (mode polarizations
        are orthogonal to their wavevectors)."""
        f = make_field()
        rng = np.random.default_rng(0)
        pts = rng.uniform(0, f.box_size, (50, 3))
        h = 1e-3
        div = np.zeros(50)
        for axis in range(3):
            dp = np.zeros(3)
            dp[axis] = h
            div += (f.velocity(pts + dp, 0.0) - f.velocity(pts - dp, 0.0))[:, axis] / (2 * h)
        assert np.abs(div).max() < 1e-4 * f.u_rms

    def test_time_variation(self):
        f = make_field()
        pts = np.array([[5.0, 5.0, 5.0]])
        assert not np.allclose(f.velocity(pts, 0.0), f.velocity(pts, 10.0))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            make_field().velocity(np.zeros((4, 2)), 0.0)


class TestAdvection:
    def test_positions_stay_in_box(self):
        f = make_field(u_rms=5000.0)
        rng = np.random.default_rng(4)
        pos = rng.uniform(0, f.box_size, (100, 3))
        for step in range(20):
            pos = advect_positions(f, pos, t=step * 0.01, dt=0.01)
        assert (pos >= 0).all() and (pos < f.box_size).all()

    def test_zero_dt_is_identity(self):
        f = make_field()
        pos = np.array([[1.0, 2.0, 3.0]])
        np.testing.assert_allclose(advect_positions(f, pos, 0.0, 0.0), pos)

    def test_particles_actually_move(self):
        f = make_field(u_rms=1000.0)
        pos = np.array([[100.0, 100.0, 100.0]])
        moved = advect_positions(f, pos, 0.0, 0.1)
        assert np.linalg.norm(moved - pos) > 0

    def test_cloud_stays_coherent_for_small_dt(self):
        """A tight particle cloud advected one step stays a cloud —
        the property that makes tracking queries spatially local."""
        f = make_field(u_rms=500.0)
        rng = np.random.default_rng(5)
        cloud = 250.0 + rng.normal(0, 5.0, (200, 3))
        moved = advect_positions(f, cloud, 0.0, 0.01)
        spread_before = cloud.std(axis=0).mean()
        spread_after = moved.std(axis=0).mean()
        assert spread_after < 3 * spread_before
