"""Tests for the buffer cache container (policy-agnostic behaviour)."""

import pytest

from repro.cache.lru import LRUPolicy
from repro.storage.buffer import BufferCache


def make(capacity=3):
    return BufferCache(capacity, LRUPolicy())


class TestResidency:
    def test_miss_then_hit(self):
        cache = make()
        assert cache.access(1, 0.0) is False
        assert cache.access(1, 1.0) is True
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_ratio == pytest.approx(0.5)

    def test_capacity_respected(self):
        cache = make(capacity=2)
        for a in range(5):
            cache.access(a, float(a))
        assert len(cache) == 2
        assert cache.stats.evictions == 3

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            BufferCache(0, LRUPolicy())

    def test_contains(self):
        cache = make()
        cache.access(7, 0.0)
        assert 7 in cache
        assert 8 not in cache

    def test_resident_atoms_snapshot(self):
        cache = make()
        cache.access(1, 0.0)
        cache.access(2, 0.0)
        assert cache.resident_atoms() == frozenset({1, 2})


class TestListeners:
    def test_insert_evict_callbacks(self):
        cache = make(capacity=1)
        inserted, evicted = [], []
        cache.add_listener(on_insert=inserted.append, on_evict=evicted.append)
        cache.access(1, 0.0)
        cache.access(2, 1.0)
        assert inserted == [1, 2]
        assert evicted == [1]

    def test_drop(self):
        cache = make()
        evicted = []
        cache.add_listener(on_evict=evicted.append)
        cache.access(1, 0.0)
        cache.access(2, 0.0)
        cache.drop([1, 99])
        assert 1 not in cache
        assert evicted == [1]
        assert cache.stats.evictions == 1


class TestInvariants:
    def test_lru_eviction_order(self):
        cache = make(capacity=2)
        cache.access(1, 0.0)
        cache.access(2, 1.0)
        cache.access(1, 2.0)  # refresh 1
        cache.access(3, 3.0)  # evicts 2
        assert 1 in cache and 3 in cache and 2 not in cache

    def test_overhead_measured(self):
        cache = make()
        for a in range(10):
            cache.access(a % 4, float(a))
        assert cache.stats.overhead_ns > 0
