"""Determinism regression suite (DESIGN.md §7).

Same trace + same seeds ⇒ bit-identical :class:`RunResult`,
field-for-field, with faults off and on — and independent of
``PYTHONHASHSEED`` (checked in fresh subprocesses), since string
hashing is the one stdlib source of per-process iteration-order
variation the engine could accidentally depend on.

Wall-clock overhead profiling counters (``gating_overhead_ns``,
``cache_overhead_ns``, ``cache["overhead_ns"]``) are the documented
exception: they measure real time by design and are excluded here.
"""

import dataclasses
import hashlib
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np
import pytest

from repro.config import CacheConfig, CostModel, EngineConfig, FaultConfig
from repro.engine.runner import SCHEDULER_NAMES, run_trace
from repro.grid.dataset import DatasetSpec
from repro.workload.generator import WorkloadParams, generate_trace

SPEC = DatasetSpec.small(n_timesteps=6, atoms_per_axis=4)

WALL_CLOCK_FIELDS = frozenset({"gating_overhead_ns", "cache_overhead_ns"})


def small_trace(seed=0, n_jobs=15):
    return generate_trace(SPEC, WorkloadParams(n_jobs=n_jobs, span=120.0, seed=seed))


def engine(**kwargs):
    return EngineConfig(
        cost=CostModel(t_b=0.02, t_m=1e-5),
        cache=CacheConfig(capacity_atoms=32),
        run_length=10,
        **kwargs,
    )


def result_fields(result):
    """``field name -> comparable value`` with wall-clock profiling
    stripped (those fields measure real time by design) and the
    ``faults["crash_effective"]`` lifecycle flag stripped (a resumed run
    records that its crash fired; the uninterrupted same-seed run never
    armed one — metadata about the run's lifecycle, not simulation
    output)."""
    out = {}
    for f in dataclasses.fields(result):
        if f.name in WALL_CLOCK_FIELDS:
            continue
        value = getattr(result, f.name)
        if isinstance(value, np.ndarray):
            out[f.name] = (value.shape, str(value.dtype), value.tobytes())
        elif f.name == "cache":
            out[f.name] = {k: v for k, v in value.items() if k != "overhead_ns"}
        elif f.name == "faults":
            out[f.name] = {k: v for k, v in value.items() if k != "crash_effective"}
        else:
            out[f.name] = repr(value)
    return out


def assert_identical(a, b):
    fa, fb = result_fields(a), result_fields(b)
    for name in fa:
        assert fa[name] == fb[name], f"RunResult.{name} differs between same-seed runs"


@pytest.mark.parametrize("name", SCHEDULER_NAMES)
def test_same_seed_runs_identical(name):
    trace = small_trace()
    assert_identical(
        run_trace(trace, name, engine()),
        run_trace(trace, name, engine()),
    )


@pytest.mark.parametrize("name", ["noshare", "liferaft2", "jaws2"])
def test_same_seed_runs_identical_with_faults(name):
    faults = FaultConfig(
        seed=11,
        transient_fault_rate=0.05,
        permanent_loss_rate=0.01,
        slow_read_rate=0.05,
    )
    trace = small_trace()
    assert_identical(
        run_trace(trace, name, engine(faults=faults)),
        run_trace(trace, name, engine(faults=faults)),
    )


def test_trace_generation_deterministic():
    a, b = small_trace(seed=3), small_trace(seed=3)
    assert len(a.jobs) == len(b.jobs)
    for ja, jb in zip(a.jobs, b.jobs):
        assert ja.submit_time == jb.submit_time
        assert [q.query_id for q in ja.queries] == [q.query_id for q in jb.queries]
        for qa, qb in zip(ja.queries, jb.queries):
            assert np.array_equal(qa.positions, qb.positions)


# ---------------------------------------------------------------------------
# PYTHONHASHSEED independence (fresh interpreters)
# ---------------------------------------------------------------------------
_DIGEST_SCRIPT = textwrap.dedent(
    """
    import dataclasses, hashlib, sys
    import numpy as np
    from repro.config import CacheConfig, CostModel, EngineConfig, FaultConfig
    from repro.engine.runner import run_trace
    from repro.grid.dataset import DatasetSpec
    from repro.workload.generator import WorkloadParams, generate_trace

    spec = DatasetSpec.small(n_timesteps=6, atoms_per_axis=4)
    trace = generate_trace(spec, WorkloadParams(n_jobs=12, span=90.0, seed=2))
    eng = EngineConfig(
        cost=CostModel(t_b=0.02, t_m=1e-5),
        cache=CacheConfig(capacity_atoms=32),
        run_length=10,
        faults=FaultConfig(seed=4, transient_fault_rate=0.03),
    )
    result = run_trace(trace, "jaws2", eng)
    h = hashlib.sha256()
    for f in sorted(dataclasses.fields(result), key=lambda f: f.name):
        if f.name in ("gating_overhead_ns", "cache_overhead_ns"):
            continue
        value = getattr(result, f.name)
        if isinstance(value, np.ndarray):
            h.update(f.name.encode())
            h.update(value.tobytes())
        elif f.name == "cache":
            slim = {k: v for k, v in value.items() if k != "overhead_ns"}
            h.update((f.name + repr(sorted(slim.items()))).encode())
        else:
            h.update((f.name + repr(value)).encode())
    sys.stdout.write(h.hexdigest())
    """
)


def _run_digest(hashseed):
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    src_dir = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src_dir + os.pathsep * bool(env.get("PYTHONPATH", "")) + env.get(
        "PYTHONPATH", ""
    )
    proc = subprocess.run(
        [sys.executable, "-c", _DIGEST_SCRIPT],
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout.strip()


def test_results_independent_of_hash_seed():
    digests = {seed: _run_digest(seed) for seed in ("0", "1", "12345")}
    assert len(set(digests.values())) == 1, (
        "RunResult digest varies with PYTHONHASHSEED: " + repr(digests)
    )
