#!/usr/bin/env python
"""Scheduler-coordinated caching: LRU-K vs SLRU vs URC (paper §V-B).

Replays one contended workload under JAWS with each replacement
policy.  URC ranks resident atoms by the scheduler's own workload-
throughput metric (atoms from the least useful time step evicted
first), SLRU batch-promotes the run's hottest atoms into a protected
segment, and LRU-K is the SQL-Server-like baseline.

Run:  python examples/cache_comparison.py
"""

import dataclasses

from repro import DatasetSpec, EngineConfig, WorkloadParams, generate_trace, run_trace
from repro.config import CacheConfig


def main() -> None:
    spec = DatasetSpec.small(n_timesteps=16, atoms_per_axis=8)
    trace = generate_trace(
        spec, WorkloadParams(n_jobs=130, span=2200.0, think_time_mean=2.0, seed=9)
    ).rescale(8.0)
    print(f"workload: {trace.n_jobs} jobs / {trace.n_queries} queries\n")

    print(f"{'policy':<7} {'hit ratio':>10} {'sec/qry':>9} {'overhead/qry':>13} {'qps':>7}")
    for policy in ("lruk", "slru", "urc"):
        engine = EngineConfig(cache=CacheConfig(capacity_atoms=256, policy=policy))
        result = run_trace(trace, "jaws2", engine)
        print(
            f"{policy.upper():<7} {result.cache_hit_ratio:10.2%} "
            f"{result.seconds_per_query:9.3f} "
            f"{result.cache_overhead_ms_per_query:10.3f} ms "
            f"{result.throughput_qps:7.3f}"
        )
    print(
        "\nPaper Table I: LRU-K 47% / 1.62 s, SLRU 49% / 1.56 s (<1 ms),"
        " URC 54% / 1.39 s (7 ms)."
    )


if __name__ == "__main__":
    main()
