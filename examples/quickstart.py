#!/usr/bin/env python
"""Quickstart: generate a Turbulence-style workload and compare JAWS
against the NoShare and LifeRaft baselines.

Run:  python examples/quickstart.py
"""

from repro import DatasetSpec, EngineConfig, WorkloadParams, generate_trace, run_trace

def main() -> None:
    # A laptop-scale dataset: 16 stored time steps of an 8x8x8 atom grid
    # (the production cluster stores 1024 steps of 16x16x16 atoms).
    spec = DatasetSpec.small(n_timesteps=16, atoms_per_axis=8)

    # A bursty mix of particle-tracking jobs, batched statistics jobs
    # and one-off queries, rescaled 8x to saturate the server (the
    # calibrated figure-grade workload lives in repro.experiments.common).
    params = WorkloadParams(
        n_jobs=120,
        span=2200.0,
        think_time_mean=2.0,
        frac_tracking=0.25,
        hotspot_sigma=80.0,
        seed=42,
    )
    trace = generate_trace(spec, params).rescale(8.0)
    print(
        f"workload: {trace.n_jobs} jobs, {trace.n_queries} queries, "
        f"{trace.n_positions:,} positions over {trace.span:.0f}s"
    )

    engine = EngineConfig()
    print(f"\n{'scheduler':<12} {'qps':>7} {'mean rt':>9} {'disk reads':>11} {'cache hit':>10}")
    baseline = None
    for name in ("noshare", "liferaft2", "jaws2"):
        result = run_trace(trace, name, engine)
        baseline = baseline or result.throughput_qps
        print(
            f"{name:<12} {result.throughput_qps:7.3f} "
            f"{result.mean_response_time:8.1f}s {result.disk['reads']:11,} "
            f"{result.cache_hit_ratio:10.2f}"
        )
    result = run_trace(trace, "jaws2", engine)
    print(
        f"\nJAWS speedup over NoShare: "
        f"{result.throughput_qps / baseline:.2f}x  (paper: ~2.6x at high contention)"
    )


if __name__ == "__main__":
    main()
