#!/usr/bin/env python
"""Sharded execution: lease failover and cluster-consistent recovery (§14).

Runs one workload four ways and proves the sharded machinery keeps its
promises:

1. single-coordinator reference (``n_shards=1`` is byte-identical to
   the cluster engine);
2. two coordinator shards, fault-free;
3. two shards with shard 1 crashing mid-run — shard 0 adopts its
   Morton ranges at a bumped lease epoch and every query still
   completes, conserved exactly;
4. the same crashed run halted at a cluster barrier and resumed from
   the composed recovery point, bit-identical to the uninterrupted
   run.

Run:  python examples/shard_failover.py
"""

import tempfile
from pathlib import Path

from repro import (
    CacheConfig,
    CoordinatorCrash,
    CostModel,
    DatasetSpec,
    EngineConfig,
    WorkloadParams,
    generate_trace,
)
from repro.config import ShardConfig
from repro.shard import resume_cluster, run_sharded

N_NODES = 4
SCHEDULER = "jaws2"


def build_inputs():
    spec = DatasetSpec.small(n_timesteps=6, atoms_per_axis=4)
    trace = generate_trace(spec, WorkloadParams(n_jobs=20, span=150.0, seed=7))
    engine = EngineConfig(
        cost=CostModel(t_b=0.02, t_m=1e-5), cache=CacheConfig(capacity_atoms=32)
    )
    return trace, engine


def describe(tag, out):
    stats = out.shard_stats
    print(
        f"{tag:<28} shards={out.n_shards} completed={out.result.n_queries} "
        f"makespan={out.result.makespan:.3f}s crashes={stats['shard_crashes']} "
        f"epoch_bumps={stats['epoch_bumps']} stale_retries={stats['stale_retries']}"
    )


def main():
    trace, engine = build_inputs()

    single = run_sharded(
        trace, SCHEDULER, N_NODES, shards=ShardConfig(n_shards=1), engine=engine
    )
    describe("single coordinator", single)

    sharded = run_sharded(
        trace, SCHEDULER, N_NODES, shards=ShardConfig(n_shards=2), engine=engine
    )
    describe("2 shards, fault-free", sharded)

    crashed = run_sharded(
        trace,
        SCHEDULER,
        N_NODES,
        shards=ShardConfig(n_shards=2, crashes=((1, 40.0),)),
        engine=engine,
    )
    describe("2 shards, shard 1 dies", crashed)
    assert crashed.result.n_queries == trace.n_queries, "failover lost queries"
    c = crashed.shard_stats["conservation"]
    assert c["created"] == c["applied"] + c["residual_cancelled"]
    print(
        f"  conservation: created={c['created']} == applied={c['applied']} "
        f"+ residual_cancelled={c['residual_cancelled']}  ✓ nothing lost"
    )
    print(f"  ownership after failover: operators={crashed.shard_stats['operators']}")

    with tempfile.TemporaryDirectory(prefix="repro-shard-ck-") as ckdir:
        try:
            run_sharded(
                trace,
                SCHEDULER,
                N_NODES,
                shards=ShardConfig(
                    n_shards=2,
                    crashes=((1, 40.0),),
                    checkpoint_dir=ckdir,
                    barrier_every_events=500,
                    halt_after_barrier=3,
                ),
                engine=engine,
            )
            raise SystemExit("expected the halt to fire")
        except CoordinatorCrash:
            manifests = sorted(Path(ckdir).glob("cluster-*.manifest"))
            print(f"halted after barrier 3: {len(manifests)} cluster manifest(s)")

        resumed = resume_cluster(ckdir).run()
        describe("resumed from barrier", resumed)

    same = (
        resumed.result.n_queries == crashed.result.n_queries
        and resumed.result.makespan == crashed.result.makespan
        and list(resumed.result.response_times) == list(crashed.result.response_times)
    )
    assert same, "resumed run diverged from the uninterrupted crashed run"
    print("resume is bit-identical to the uninterrupted run  ✓")


if __name__ == "__main__":
    main()
