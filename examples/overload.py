#!/usr/bin/env python
"""Overload protection under a flash crowd (DESIGN.md §9).

A lightly loaded service of interactive point queries is hit by a 20x
flash crowd — hundreds of one-off queries from distinct first-time
users inside a 100-second window (the "dataset linked from a popular
article" scenario).  The same burst is replayed twice:

* **unprotected** — every job is admitted; the pending queue grows
  without bound during the burst and the p99 response time of
  interactive queries blows up by an order of magnitude;
* **protected** — admission control (bounded queues + weighted fair
  quotas) and the brownout controller shed the excess at the front
  door, and the p99 of *admitted* queries stays within a few multiples
  of the no-burst baseline.

Distinct users per burst job is deliberate: it defeats per-client rate
limiting (every bucket is full on first sight), so the cluster-level
layers — queue bound, fair quotas, brownout — have to do the work.

Run:  python examples/overload.py
"""

import dataclasses

from repro.config import CostModel, EngineConfig, OverloadConfig
from repro.engine.runner import run_trace
from repro.grid.dataset import DatasetSpec
from repro.workload.generator import (
    FlashCrowdParams,
    WorkloadParams,
    generate_trace,
    inject_flash_crowd,
)


def main() -> None:
    spec = DatasetSpec.small(n_timesteps=8, atoms_per_axis=4)

    # Light base load: one-off interactive queries only, mostly uniform
    # arrivals — the service is comfortably over-provisioned.
    base = generate_trace(
        spec,
        WorkloadParams(
            n_jobs=100,
            span=1000.0,
            frac_tracking=0.0,
            frac_batched=0.0,
            burstiness=0.2,
            seed=11,
        ),
    )
    burst = inject_flash_crowd(
        base, FlashCrowdParams(factor=20.0, start=300.0, duration=100.0, seed=5)
    )
    print(
        f"flash crowd: {burst.n_jobs - base.n_jobs} one-off jobs from distinct "
        f"users in 100s, on a base load of {base.n_jobs} jobs over 1000s"
    )

    # A slow disk makes the burst genuinely saturating at this scale.
    engine = EngineConfig(cost=CostModel(t_b=0.5))
    protected = dataclasses.replace(
        engine,
        overload=OverloadConfig(
            enabled=True,
            max_queue_depth=16,
            client_rate=1.0,
            client_burst=3.0,
            shed_policy="deadline",
            throttle_enter=0.4,
            throttle_exit=0.25,
            shed_enter=0.7,
            shed_exit=0.45,
            shed_target=0.4,
        ),
    )

    results = {}
    for label, trace, config in (
        ("baseline (no burst)", base, engine),
        ("burst, unprotected", burst, engine),
        ("burst, protected", burst, protected),
    ):
        result = run_trace(trace, "jaws2", config)
        results[label] = result
        pct = result.class_percentiles()["interactive"]
        line = (
            f"{label:22s} completed={result.n_queries:4d} "
            f"rejected={result.rejected_jobs:3d} shed={result.shed_queries:3d} "
            f"p50={pct['p50']:6.2f}s p99={pct['p99']:6.2f}s"
        )
        print(line)
        if config.overload.enabled:
            modes = result.overload["time_in_mode"]
            spent = ", ".join(f"{m} {s:.0f}s" for m, s in modes.items() if s > 0)
            reasons = result.overload["rejected_by_reason"]
            print(f"{'':22s} modes: {spent}; rejections: {reasons}")

    base_p99 = results["baseline (no burst)"].class_percentiles()["interactive"]["p99"]
    for label in ("burst, unprotected", "burst, protected"):
        p99 = results[label].class_percentiles()["interactive"]["p99"]
        print(f"{label}: interactive p99 = {p99 / base_p99:.1f}x the no-burst baseline")


if __name__ == "__main__":
    main()
