#!/usr/bin/env python
"""Degraded-mode cluster execution: faults, failover, deadlines.

A 4-node JAWS cluster replays the same workload three ways:

1. clean — no faults (the baseline every other run is judged against);
2. faulty disks + a mid-trace node crash, with replication 2 so the
   crashed node's work fails over to its ring neighbor;
3. the same faults plus a per-query deadline, so overdue queries are
   cancelled and the tail of their ordered jobs aborted.

Every fault is drawn from a seeded stream: rerunning this script gives
identical numbers (the determinism property `tests/test_faults.py`
pins).

Run:  python examples/fault_tolerance.py
"""

from repro import DatasetSpec, FaultConfig, WorkloadParams, generate_trace
from repro.cluster import run_cluster

N_NODES = 4


def show(label: str, result) -> None:
    print(
        f"{label:>10}: {result.n_queries:4d} done  "
        f"qps={result.throughput_qps:6.3f}  "
        f"avail={result.availability:6.3f}  "
        f"retries={result.retries:4d}  failovers={result.failovers:4d}  "
        f"timeouts={result.timeouts:3d}  aborted_jobs={result.aborted_jobs:2d}"
    )


def main() -> None:
    spec = DatasetSpec.small(n_timesteps=16, atoms_per_axis=8)
    trace = generate_trace(
        spec, WorkloadParams(n_jobs=80, span=1500.0, think_time_mean=2.0, seed=5)
    ).rescale(8.0)
    print(f"workload: {trace.n_jobs} jobs / {trace.n_queries} queries on {N_NODES} nodes\n")

    clean = run_cluster(trace, "jaws2", N_NODES).result
    show("clean", clean)

    # 5% of disk reads fail transiently (retried with exponential
    # backoff in virtual time); node 1 crashes mid-trace and recovers.
    faults = FaultConfig(
        seed=11,
        transient_fault_rate=0.05,
        replication=2,
        node_crashes=((1, 40.0, 160.0),),
    )
    faulty = run_cluster(trace, "jaws2", N_NODES, faults=faults).result
    show("faulty", faulty)

    # Same faults plus a deadline: queries not done within the budget
    # are cancelled everywhere and their ordered jobs aborted.
    deadline = faults.with_(query_deadline=30.0)
    bounded = run_cluster(trace, "jaws2", N_NODES, faults=deadline).result
    show("deadline", bounded)

    slowdown = clean.throughput_qps / faulty.throughput_qps if faulty.throughput_qps else 0.0
    print(
        f"\nFaults cost {100 * (1 - 1 / slowdown):.1f}% throughput "
        f"(retry/backoff time + failover locality loss), yet availability "
        f"stays {faulty.availability:.3f} — every query still completes "
        f"because replicas cover the crashed node."
    )
    print(
        f"With a {deadline.query_deadline:.0f}s deadline, "
        f"{bounded.timeouts} quer{'y' if bounded.timeouts == 1 else 'ies'} "
        f"timed out and {bounded.aborted_jobs} ordered job(s) aborted; "
        f"availability {bounded.availability:.3f}."
    )

    # Throughput vs disk-fault rate: batching amortizes retry penalties
    # across co-scheduled sub-queries, so JAWS degrades more gracefully
    # than share-nothing execution.
    print(f"\n{'fault rate':>10} {'jaws2 qps':>10} {'noshare qps':>12}")
    for rate in (0.0, 0.02, 0.05, 0.10):
        sweep = FaultConfig(seed=11, transient_fault_rate=rate) if rate else None
        jaws = run_cluster(trace, "jaws2", N_NODES, faults=sweep).result
        noshare = run_cluster(trace, "noshare", N_NODES, faults=sweep).result
        print(f"{rate:>10.2f} {jaws.throughput_qps:>10.3f} {noshare.throughput_qps:>12.3f}")


if __name__ == "__main__":
    main()
