#!/usr/bin/env python
"""Particle tracking with job-aware gated execution.

Builds the paper's motivating scenario by hand: several scientists
launch particle-tracking experiments over the same turbulent region at
nearly the same time.  Each job advects a particle cloud one stored
time step per query, and the next query's positions depend on the
previous result — an *ordered* job.  JAWS aligns the jobs
(Needleman–Wunsch over their atom sets) and co-schedules the queries
that share atoms, reading each region once instead of once per job.

Run:  python examples/particle_tracking.py
"""

import numpy as np

from repro import DatasetSpec, EngineConfig, SyntheticTurbulence, run_trace
from repro.config import SchedulerConfig
from repro.core.jaws import JAWSScheduler
from repro.grid.field import advect_positions
from repro.workload.job import Job, JobKind
from repro.workload.query import Query
from repro.workload.trace import Trace


def make_tracking_job(spec, field, job_id, user_id, start, n_steps, cloud, think=1.0):
    """One ordered job: advect `cloud` from time step `start`."""
    queries = []
    positions = cloud
    qid_base = job_id * 1000
    for i in range(n_steps):
        timestep = start + i
        queries.append(
            Query(
                query_id=qid_base + i,
                job_id=job_id,
                seq=i,
                user_id=user_id,
                op="interp",
                timestep=timestep,
                positions=positions.copy(),
            )
        )
        positions = advect_positions(field, positions, t=timestep * spec.dt, dt=spec.dt)
    return Job(job_id, JobKind.ORDERED, user_id, submit_time=float(job_id), think_time=think, queries=queries)


def main() -> None:
    spec = DatasetSpec.small(n_timesteps=12, atoms_per_axis=8)
    field = SyntheticTurbulence(box_size=spec.grid_side, seed=1, u_rms=30000.0)
    rng = np.random.default_rng(0)

    # Four scientists seed particle clouds in the same vortical region,
    # minutes apart.  Without gating the staggered jobs sweep the same
    # atoms at different times (each pays its own reads); gated JAWS
    # delays the early jobs a little so all four read each region once.
    hotspot = np.array([200.0, 200.0, 200.0])
    jobs = []
    for j in range(4):
        job = make_tracking_job(
            spec,
            field,
            job_id=j,
            user_id=j,
            start=0,
            n_steps=10,
            cloud=np.mod(hotspot + rng.normal(0, 40.0, (400, 3)), spec.grid_side),
        )
        job.submit_time = float(j * 25.0)
        jobs.append(job)
    trace = Trace(spec, jobs)
    engine = EngineConfig()

    print("Tracking 4 concurrent 10-step particle clouds (400 particles each)\n")
    for label, job_aware in (("gated (JAWS_2)", True), ("ungated (JAWS_1)", False)):
        cfg = SchedulerConfig(
            alpha=0.0, adaptive_alpha=False, batch_size=15, job_aware=job_aware
        )
        scheduler = JAWSScheduler(spec, engine.cost, cfg)
        result = run_trace(trace, scheduler, engine)
        print(
            f"{label:<18} disk reads={result.disk['reads']:5d}  "
            f"makespan={result.makespan:7.1f}s  "
            f"mean rt={result.mean_response_time:5.1f}s  "
            f"cache hit={result.cache_hit_ratio:.2f}"
        )
    print(
        "\nGated execution aligns the four jobs and reads each shared atom once"
        " per step instead of once per job (paper Fig. 2's 33% scenario)."
    )


if __name__ == "__main__":
    main()
