#!/usr/bin/env python
"""Adaptive starvation resistance in action (paper §V-A).

Builds a workload whose saturation changes mid-trace — a quiet phase of
sparse one-off queries followed by a heavy burst of overlapping jobs —
and shows the age bias α adapting: rising (favouring response time)
while the system has spare capacity, falling (favouring contention
order and throughput) once the burst saturates it.

Run:  python examples/adaptive_starvation.py
"""

from dataclasses import replace

from repro import DatasetSpec, EngineConfig, WorkloadParams, generate_trace, run_trace
from repro.config import SchedulerConfig
from repro.core.jaws import JAWSScheduler
from repro.workload.trace import Trace


def main() -> None:
    spec = DatasetSpec.small(n_timesteps=16, atoms_per_axis=8)

    # Phase 1 (0-600s): light load. Phase 2 (600s+): a compressed burst.
    quiet = generate_trace(
        spec, WorkloadParams(n_jobs=40, span=600.0, frac_tracking=0.05, seed=3)
    )
    burst = generate_trace(
        spec,
        WorkloadParams(n_jobs=140, span=300.0, think_time_mean=1.0, seed=4),
    )
    # Shift the burst behind the quiet phase and re-id its jobs so the
    # two generated traces can be concatenated.
    offset = 600.0
    id_base = max(j.job_id for j in quiet.jobs) + 1
    fixed = []
    for j in burst.jobs:
        for q in j.queries:
            q.job_id = j.job_id + id_base
        fixed.append(
            replace(j, job_id=j.job_id + id_base, submit_time=j.submit_time + offset)
        )
    trace = Trace(spec, quiet.jobs + fixed)

    engine = EngineConfig(run_length=25)
    cfg = SchedulerConfig(alpha=0.5, adaptive_alpha=True, run_length=25, batch_size=15)
    scheduler = JAWSScheduler(spec, engine.cost, cfg)
    result = run_trace(trace, scheduler, engine)

    print(f"{trace.n_jobs} jobs / {trace.n_queries} queries; quiet phase then burst\n")
    print("run   alpha   mean-rt(s)  throughput(q/s)")
    for obs, alpha in zip(result.runs, result.alpha_history):
        bar = "#" * int(alpha * 40)
        print(
            f"{obs.run_index:3d}   {alpha:5.2f}  {obs.mean_response_time:9.1f}"
            f"  {obs.throughput:10.2f}   {bar}"
        )
    print(
        "\nAlpha drifts up while the system is underloaded (cheap response-time"
        "\nwins) and drops once the burst saturates it (throughput first)."
    )


if __name__ == "__main__":
    main()
