#!/usr/bin/env python
"""Crash-consistent checkpointing and deterministic recovery (§8).

Runs one workload three ways and proves they agree bit-for-bit:

1. an uninterrupted baseline run;
2. a checkpointed run killed mid-flight by an injected
   ``coordinator_crash`` fault;
3. the recovery: ``Simulator.restore`` loads the latest snapshot,
   replay-verifies the write-ahead log against the deterministic
   re-run, re-audits queue/gating consistency, and continues.

Run:  python examples/crash_recovery.py
"""

import dataclasses
import tempfile
from pathlib import Path

from repro import (
    CheckpointConfig,
    CoordinatorCrash,
    DatasetSpec,
    EngineConfig,
    FaultConfig,
    Simulator,
    WorkloadParams,
    generate_trace,
)
from repro.engine.runner import make_scheduler


def build_engine(ckpt_dir: Path | None = None, crash_at: int | None = None) -> EngineConfig:
    faults = FaultConfig(
        seed=11,
        transient_fault_rate=0.05,
        slow_read_rate=0.05,
        coordinator_crash_at=crash_at,
    )
    checkpoint = (
        CheckpointConfig(directory=str(ckpt_dir), every_events=50)
        if ckpt_dir is not None
        else CheckpointConfig()
    )
    return EngineConfig(faults=faults, checkpoint=checkpoint, sanitize=True)


def run_once(trace, engine: EngineConfig) -> Simulator:
    sim = Simulator(trace, [make_scheduler("jaws2", trace, engine)], engine)
    sim.run()
    return sim


def main() -> None:
    spec = DatasetSpec.small(n_timesteps=6, atoms_per_axis=4)
    trace = generate_trace(spec, WorkloadParams(n_jobs=20, span=150.0, seed=7))

    baseline_sim = run_once(trace, build_engine())
    baseline = baseline_sim._result()
    total = baseline_sim.event_index
    crash_at = total // 2
    print(f"baseline: {total} events, {baseline.n_queries} queries, "
          f"mean rt {baseline.mean_response_time:.4f}s")

    with tempfile.TemporaryDirectory() as tmp:
        ckpt = Path(tmp) / "ckpt"
        engine = build_engine(ckpt, crash_at=crash_at)
        sim = Simulator(trace, [make_scheduler("jaws2", trace, engine)], engine)
        try:
            sim.run()
        except CoordinatorCrash as exc:
            print(f"crashed:  {exc}")
        artifacts = sorted(p.name for p in ckpt.iterdir())
        print(f"on disk:  {', '.join(artifacts)}")

        resumed = Simulator.restore(ckpt)
        print(f"restored: snapshot at event {resumed.event_index}, "
              f"replaying the WAL forward")
        recovered = resumed.run()

    fields = dataclasses.fields(recovered)
    skip = {"gating_overhead_ns", "cache_overhead_ns"}  # wall-clock profiling
    identical = all(
        repr(getattr(recovered, f.name)) == repr(getattr(baseline, f.name))
        for f in fields
        if f.name not in skip and f.name != "cache"
    )
    print(f"recovered: {recovered.n_queries} queries, "
          f"mean rt {recovered.mean_response_time:.4f}s")
    print(f"bit-identical to uninterrupted baseline: {identical}")
    assert identical


if __name__ == "__main__":
    main()
