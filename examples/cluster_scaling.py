#!/usr/bin/env python
"""Multi-node cluster simulation (paper Fig. 7 architecture).

Atoms are spatially partitioned across nodes as contiguous Morton
ranges; every node runs its own JAWS instance with a private cache and
disk.  A query fans out to the nodes owning its atoms and completes
when all of them finish, so ordered jobs are gated by their slowest
node — exactly the deployment the Turbulence cluster runs.

Run:  python examples/cluster_scaling.py
"""

from repro import DatasetSpec, EngineConfig, WorkloadParams, generate_trace
from repro.cluster import run_cluster


def main() -> None:
    spec = DatasetSpec.small(n_timesteps=16, atoms_per_axis=8)
    trace = generate_trace(
        spec, WorkloadParams(n_jobs=130, span=2200.0, think_time_mean=2.0, seed=5)
    ).rescale(12.0)
    engine = EngineConfig()
    print(f"workload: {trace.n_jobs} jobs / {trace.n_queries} queries\n")

    print(f"{'nodes':>5} {'qps':>8} {'mean rt':>9} {'imbalance':>10}  per-node atoms executed")
    base = None
    for n_nodes in (1, 2, 4, 8):
        out = run_cluster(trace, "jaws2", n_nodes, engine)
        base = base or out.result.throughput_qps
        print(
            f"{n_nodes:5d} {out.result.throughput_qps:8.3f} "
            f"{out.result.mean_response_time:8.1f}s {out.load_imbalance:10.2f}  "
            f"{out.node_atoms_executed}"
        )
    print(
        "\nThroughput scales with nodes until per-node load imbalance and"
        "\ncross-node query fan-out (a query waits for its slowest node)"
        "\nlimit the gain — the aggregate-throughput argument of §I."
    )


if __name__ == "__main__":
    main()
