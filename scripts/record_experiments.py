#!/usr/bin/env python
"""Record FULL-scale results for every figure/table into a JSON file.

Used to produce the numbers in EXPERIMENTS.md:

    python scripts/record_experiments.py [--scale full] [--out results.json]

Runs take tens of minutes at FULL scale on one core; each artifact's
result is flushed to disk as soon as it finishes.
"""

from __future__ import annotations

import argparse
import inspect
import json
import time
from pathlib import Path
from typing import Any, Callable, Dict

from repro.experiments import ablations, fig08, fig09, fig10, fig11, fig12, jobid, table1
from repro.experiments.common import ExperimentScale


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--scale", choices=["small", "full"], default="full")
    parser.add_argument("--out", default="experiment_results.json")
    parser.add_argument(
        "--only", nargs="*", default=None, help="subset of artifact names to run"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for experiments that support parallel "
        "evaluation (bit-identical to serial; see DESIGN.md §10)",
    )
    args = parser.parse_args()
    scale = ExperimentScale(args.scale)
    out_path = Path(args.out)
    results: dict = {}
    if out_path.exists():
        results = json.loads(out_path.read_text())

    def with_jobs(fn: Callable[..., Any], /, *fn_args: Any, **fn_kwargs: Any) -> Any:
        """Pass --jobs through to run functions that accept it."""
        if "jobs" in inspect.signature(fn).parameters:
            fn_kwargs["jobs"] = args.jobs
        return fn(*fn_args, **fn_kwargs)

    artifacts: Dict[str, Callable[[], Any]] = {
        "fig09": lambda: with_jobs(fig09.run, scale),
        "jobid": lambda: with_jobs(jobid.run, scale),
        "fig08": lambda: with_jobs(fig08.run, scale),
        "fig10": lambda: with_jobs(fig10.run, scale),
        "fig12": lambda: with_jobs(fig12.run, scale, ks=(1, 2, 5, 10, 15, 20, 30, 50)),
        "table1": lambda: with_jobs(table1.run, scale),
        "fig11": lambda: with_jobs(
            fig11.run, scale, speedups=(1.0, 2.0, 4.0, 8.0, 16.0)
        ),
        "ablation_urc": lambda: with_jobs(ablations.urc_vs_saturation, scale),
        "ablation_gating": lambda: with_jobs(ablations.gating_ablation, scale),
        "ablation_norm": lambda: with_jobs(ablations.metric_normalization, scale),
        "ablation_seq": lambda: with_jobs(ablations.seq_discount, scale),
    }
    names = args.only or list(artifacts)
    for name in names:
        # Wall-clock reads below time the *recording harness*, never the
        # simulation: the engine advances only its virtual clock, and the
        # _wall_s entries are operator-facing progress bookkeeping.
        t0 = time.time()  # jawslint: disable=D001 - harness progress timing, outside the engine
        print(f"[{time.strftime('%H:%M:%S')}] running {name} ...", flush=True)
        results[name] = artifacts[name]()
        results[name + "_wall_s"] = round(time.time() - t0, 1)  # jawslint: disable=D001 - harness progress timing, outside the engine
        out_path.write_text(json.dumps(results, indent=2, default=float))
        print(f"  done in {time.time() - t0:.0f}s -> {out_path}", flush=True)  # jawslint: disable=D001 - harness progress timing, outside the engine


if __name__ == "__main__":
    main()
